open Ise_model

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rel                                                                 *)

let test_rel_closure () =
  let r = Rel.of_list 4 [ (0, 1); (1, 2) ] in
  let c = Rel.transitive_closure r in
  check Alcotest.bool "0->2" true (Rel.mem c 0 2);
  check Alcotest.bool "not 2->0" false (Rel.mem c 2 0)

let test_rel_acyclic () =
  check Alcotest.bool "chain acyclic" true
    (Rel.is_acyclic (Rel.of_list 3 [ (0, 1); (1, 2) ]));
  check Alcotest.bool "cycle detected" false
    (Rel.is_acyclic (Rel.of_list 3 [ (0, 1); (1, 2); (2, 0) ]))

let test_rel_cycle_witness () =
  let r = Rel.of_list 3 [ (0, 1); (1, 2); (2, 0) ] in
  match Rel.cycle_witness r with
  | None -> Alcotest.fail "expected a cycle"
  | Some path ->
    check Alcotest.bool "closes" true
      (List.length path >= 2 && List.hd path = List.nth path (List.length path - 1))

let test_rel_compose () =
  let r = Rel.of_list 3 [ (0, 1) ] and s = Rel.of_list 3 [ (1, 2) ] in
  check Alcotest.bool "composition" true (Rel.mem (Rel.compose r s) 0 2);
  check Alcotest.int "only one pair" 1 (Rel.cardinal (Rel.compose r s))

let test_rel_inverse () =
  let r = Rel.of_list 2 [ (0, 1) ] in
  check Alcotest.bool "inverted" true (Rel.mem (Rel.inverse r) 1 0)

let test_rel_topo () =
  let r = Rel.of_list 3 [ (2, 1); (1, 0) ] in
  check (Alcotest.option (Alcotest.list Alcotest.int)) "topo order"
    (Some [ 2; 1; 0 ])
    (Rel.topological_order r);
  let c = Rel.of_list 2 [ (0, 1); (1, 0) ] in
  check Alcotest.bool "cyclic has no topo" true (Rel.topological_order c = None)

let prop_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure is idempotent" ~count:100
    QCheck.(list (pair (int_range 0 5) (int_range 0 5)))
    (fun pairs ->
      let r = Rel.of_list 6 pairs in
      let c = Rel.transitive_closure r in
      Rel.equal c (Rel.transitive_closure c))

let prop_union_commutes =
  QCheck.Test.make ~name:"relation union commutes" ~count:100
    QCheck.(pair
              (list (pair (int_range 0 4) (int_range 0 4)))
              (list (pair (int_range 0 4) (int_range 0 4))))
    (fun (p1, p2) ->
      let a = Rel.of_list 5 p1 and b = Rel.of_list 5 p2 in
      Rel.equal (Rel.union a b) (Rel.union b a))

(* ------------------------------------------------------------------ *)
(* Event compilation                                                   *)

let mp_threads =
  [| [ Instr.Store (0, 1); Instr.Store (1, 1) ];
     [ Instr.Load (0, 1); Instr.Load (1, 0) ] |]

let test_compile_event_counts () =
  let g = Event.compile mp_threads in
  (* 2 init writes + 2 stores + 2 loads *)
  check Alcotest.int "event count" 6 (Array.length g.Event.events);
  let inits = Array.to_list g.Event.events |> List.filter Event.is_init in
  check Alcotest.int "init writes" 2 (List.length inits)

let test_compile_po () =
  let g = Event.compile mp_threads in
  let stores =
    Array.to_list g.Event.events
    |> List.filter (fun e -> Event.is_write e && not (Event.is_init e))
  in
  match stores with
  | [ a; b ] ->
    check Alcotest.bool "po between stores" true
      (Rel.mem g.Event.po a.Event.id b.Event.id)
  | _ -> Alcotest.fail "expected two stores"

let test_compile_data_dep () =
  let g =
    Event.compile [| [ Instr.Load (0, 0); Instr.Store_reg (1, 0) ] |]
  in
  check Alcotest.int "one data dep" 1 (Rel.cardinal g.Event.data_dep)

let test_compile_addr_dep () =
  let g =
    Event.compile [| [ Instr.Load (0, 0); Instr.Load_dep (1, 1, 0) ] |]
  in
  check Alcotest.int "one addr dep" 1 (Rel.cardinal g.Event.addr_dep)

let test_compile_ctrl_dep () =
  let g =
    Event.compile
      [| [ Instr.Load (0, 0); Instr.Ctrl 0; Instr.Store (1, 1); Instr.Load (1, 1) ] |]
  in
  (* ctrl dep reaches both the store and the load after the branch *)
  check Alcotest.int "ctrl deps" 2 (Rel.cardinal g.Event.ctrl_dep)

let test_compile_amo_pair () =
  let g = Event.compile [| [ Instr.Amo (0, 0, 1) ] |] in
  let rmws =
    Array.to_list g.Event.events
    |> List.filter (fun e -> e.Event.rmw_partner <> None)
  in
  check Alcotest.int "amo yields a pair" 2 (List.length rmws)

let test_compile_faulting_mark () =
  let g = Event.compile ~faulting:[ (0, 0) ] mp_threads in
  let faulting =
    Array.to_list g.Event.events |> List.filter (fun e -> e.Event.faulting)
  in
  check Alcotest.int "one faulting store" 1 (List.length faulting)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

let test_enum_counts_mp () =
  let g = Event.compile mp_threads in
  (* each load has 2 rf choices (init or the store); co fixed. *)
  check Alcotest.int "mp candidates" 4 (Enum.count g)

let test_enum_all_well_formed () =
  let g = Event.compile mp_threads in
  Seq.iter
    (fun ex ->
      Array.iteri
        (fun i e ->
          if Event.is_read e then
            check Alcotest.bool "rf assigned" true (ex.Exec.rf.(i) >= 0))
        g.Event.events)
    (Enum.candidates g)

let test_enum_amo_atomicity () =
  (* two fetch-adds: the interleavings where both read 0 are dropped *)
  let g =
    Event.compile [| [ Instr.Amo_add (0, 0, 1) ]; [ Instr.Amo_add (0, 0, 1) ] |]
  in
  let outcomes =
    Seq.fold_left
      (fun acc ex -> Outcome.Set.add (Exec.outcome ex) acc)
      Outcome.Set.empty (Enum.candidates g)
  in
  check Alcotest.bool "final x=2 in every well-formed candidate" true
    (Outcome.Set.for_all (fun o -> Outcome.mem_value o 0 = 2) outcomes)

(* ------------------------------------------------------------------ *)
(* Axioms: classic verdicts                                            *)

let violation_mp o = Outcome.reg o 1 0 = 1 && Outcome.reg o 1 1 = 0

let test_mp_verdicts () =
  let allowed cfg = Check.allowed cfg mp_threads in
  check Alcotest.bool "SC forbids" false
    (Outcome.Set.exists violation_mp (allowed Axiom.sc));
  check Alcotest.bool "PC forbids" false
    (Outcome.Set.exists violation_mp (allowed Axiom.pc));
  check Alcotest.bool "WC allows" true
    (Outcome.Set.exists violation_mp (allowed Axiom.wc))

let test_sb_verdicts () =
  let sb =
    [| [ Instr.Store (0, 1); Instr.Load (0, 1) ];
       [ Instr.Store (1, 1); Instr.Load (1, 0) ] |]
  in
  let both_zero o = Outcome.reg o 0 0 = 0 && Outcome.reg o 1 1 = 0 in
  check Alcotest.bool "SC forbids 0,0" false
    (Outcome.Set.exists both_zero (Check.allowed Axiom.sc sb));
  check Alcotest.bool "PC allows 0,0" true
    (Outcome.Set.exists both_zero (Check.allowed Axiom.pc sb))

let test_sc_within_pc_within_wc () =
  (* model strength: allowed(SC) ⊆ allowed(PC) ⊆ allowed(WC) on MP *)
  check Alcotest.bool "SC ⊆ PC" true (Check.subset Axiom.sc Axiom.pc mp_threads);
  check Alcotest.bool "PC ⊆ WC" true (Check.subset Axiom.pc Axiom.wc mp_threads)

let test_fence_restores_order () =
  let mp_f =
    [| [ Instr.Store (0, 1); Instr.Fence; Instr.Store (1, 1) ];
       [ Instr.Load (0, 1); Instr.Fence; Instr.Load (1, 0) ] |]
  in
  check Alcotest.bool "WC+fences forbids" false
    (Outcome.Set.exists violation_mp (Check.allowed Axiom.wc mp_f))

let test_coherence_all_models () =
  (* CoWW: final value must be the po-last store *)
  let coww = [| [ Instr.Store (0, 1); Instr.Store (0, 2) ] |] in
  List.iter
    (fun cfg ->
      let allowed = Check.allowed cfg coww in
      check Alcotest.bool
        (Axiom.name cfg ^ " final is 2")
        true
        (Outcome.Set.for_all (fun o -> Outcome.mem_value o 0 = 2) allowed))
    [ Axiom.sc; Axiom.pc; Axiom.wc ]

(* ------------------------------------------------------------------ *)
(* Imprecise extension                                                 *)

let test_split_stream_mp_violation () =
  let cfg = Axiom.with_faults Axiom.Split_stream Axiom.pc in
  let allowed = Check.allowed ~faulting:[ (0, 0) ] cfg mp_threads in
  check Alcotest.bool "split stream admits the MP violation" true
    (Outcome.Set.exists violation_mp allowed)

let test_same_stream_mp_no_violation () =
  let cfg = Axiom.with_faults Axiom.Same_stream Axiom.pc in
  let allowed = Check.allowed ~faulting:[ (0, 0) ] cfg mp_threads in
  check Alcotest.bool "same stream forbids the MP violation" false
    (Outcome.Set.exists violation_mp allowed)

let test_fig2_operational () =
  check Alcotest.bool "split violates PC" true
    (Imprecise.fig2_violates_pc Imprecise.Split);
  check Alcotest.bool "same preserves PC" false
    (Imprecise.fig2_violates_pc Imprecise.Same)

let test_fig2_outcome_space () =
  (* same-stream outcomes must be a subset of split-stream outcomes *)
  let as_set l = List.sort_uniq compare l in
  let split = as_set (Imprecise.fig2_outcomes Imprecise.Split) in
  let same = as_set (Imprecise.fig2_outcomes Imprecise.Same) in
  check Alcotest.bool "same ⊆ split reachable observations" true
    (List.for_all (fun o -> List.mem o split) same)

let test_same_stream_preserves_theorems () =
  List.iter
    (fun threads ->
      check Alcotest.bool "same-stream preserves PC" true
        (Imprecise.same_stream_preserves Axiom.pc threads);
      check Alcotest.bool "same-stream preserves WC" true
        (Imprecise.same_stream_preserves Axiom.wc threads))
    [ mp_threads;
      [| [ Instr.Store (0, 1); Instr.Load (0, 1) ];
         [ Instr.Store (1, 1); Instr.Load (1, 0) ] |] ]

let test_split_stream_weakens_theorems () =
  check Alcotest.bool "split-stream only adds outcomes" true
    (Imprecise.split_stream_weakens Axiom.pc mp_threads)

let test_split_equals_same_under_wc () =
  (* §4.4: in WC the supply order is irrelevant — split and same stream
     coincide. *)
  List.iter
    (fun faulting ->
      check Alcotest.bool "WC split == WC same" true
        (Check.equivalent ~faulting
           (Axiom.with_faults Axiom.Split_stream Axiom.wc)
           (Axiom.with_faults Axiom.Same_stream Axiom.wc)
           mp_threads))
    (Imprecise.all_store_subsets mp_threads)

(* ------------------------------------------------------------------ *)
(* Outcome                                                             *)

let test_explain_forbidden_cycle () =
  (* the MP violation under PC: explain must return a cycle *)
  let target =
    Outcome.make ~regs:[ ((1, 0), 1); ((1, 1), 0) ] ~mem:[ (0, 1); (1, 1) ]
  in
  (match Check.explain Axiom.pc mp_threads target with
   | Check.Forbidden_cycle cycle ->
     check Alcotest.bool "non-trivial cycle" true (List.length cycle >= 3)
   | Check.Allowed_by _ -> Alcotest.fail "PC forbids the MP violation"
   | Check.Unreachable -> Alcotest.fail "the outcome has candidates")

let test_explain_allowed () =
  let target =
    Outcome.make ~regs:[ ((1, 0), 1); ((1, 1), 0) ] ~mem:[ (0, 1); (1, 1) ]
  in
  (match Check.explain Axiom.wc mp_threads target with
   | Check.Allowed_by witness ->
     check Alcotest.bool "witness rendered" true (String.length witness > 0)
   | _ -> Alcotest.fail "WC allows the MP violation")

let test_explain_unreachable () =
  let target = Outcome.make ~regs:[ ((1, 0), 42) ] ~mem:[] in
  check Alcotest.bool "no store writes 42" true
    (Check.explain Axiom.wc mp_threads target = Check.Unreachable)

let test_outcome_canonical () =
  let a = Outcome.make ~regs:[ ((0, 1), 5); ((0, 0), 3) ] ~mem:[ (1, 2); (0, 1) ] in
  let b = Outcome.make ~regs:[ ((0, 0), 3); ((0, 1), 5) ] ~mem:[ (0, 1); (1, 2) ] in
  check Alcotest.bool "order-insensitive equality" true (Outcome.equal a b)

let test_outcome_defaults () =
  let o = Outcome.make ~regs:[] ~mem:[] in
  check Alcotest.int "missing reg is 0" 0 (Outcome.reg o 3 7);
  check Alcotest.int "missing mem is 0" 0 (Outcome.mem_value o 9)

let prop_enum_sc_subset_wc =
  QCheck.Test.make ~name:"allowed(SC) ⊆ allowed(WC) on random programs" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let t = Ise_litmus.Gen.generate rng Ise_litmus.Gen.default_params in
      Check.subset Axiom.sc Axiom.wc t.Ise_litmus.Lit_test.threads)

(* ------------------------------------------------------------------ *)
(* fast-enumerator oracle: Enum.search must agree with the reference
   enumerate-then-check engine on outcome sets, consistent-candidate
   counts and verdicts, for every model × fault mode, with and without
   symmetry reduction *)

let all_configs =
  List.concat_map
    (fun m ->
      List.map
        (fun fm -> Axiom.with_faults fm m)
        [ Axiom.Precise; Axiom.Same_stream; Axiom.Split_stream ])
    [ Axiom.sc; Axiom.pc; Axiom.wc ]

let oracle_check name (t : Ise_litmus.Lit_test.t) =
  let faulting = Ise_litmus.Lit_test.stores_of t in
  List.iter
    (fun cfg ->
      let ref_set, _total, ref_consistent =
        Check.allowed_with_stats ~faulting cfg t.Ise_litmus.Lit_test.threads
      in
      List.iter
        (fun symmetry ->
          let fast_set, stats =
            Enum.search ~symmetry ~faulting cfg t.Ise_litmus.Lit_test.threads
          in
          let ctx =
            Printf.sprintf "%s / %s / symmetry=%b" name (Axiom.name cfg)
              symmetry
          in
          check Alcotest.bool (ctx ^ ": outcome sets equal") true
            (Outcome.Set.equal ref_set fast_set);
          check Alcotest.int (ctx ^ ": consistent count") ref_consistent
            stats.Enum.consistent)
        [ true; false ])
    all_configs

let test_enum_oracle_library () =
  List.iter
    (fun t -> oracle_check t.Ise_litmus.Lit_test.name t)
    Ise_litmus.Library.all

let corpus_dir () =
  match
    List.find_opt
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "../../../corpus"; "../../corpus"; "../corpus"; "corpus" ]
  with
  | Some d -> d
  | None -> Alcotest.fail "corpus/ directory not found from test cwd"

let test_enum_oracle_corpus () =
  let entries =
    List.filter_map
      (fun (_, r) ->
        match r with
        | Ok e -> Some e.Ise_fuzz.Corpus.e_test
        | Error _ -> None)
      (Ise_fuzz.Corpus.load_dir (corpus_dir ()))
  in
  check Alcotest.bool "corpus non-empty" true (entries <> []);
  List.iteri
    (fun i t -> oracle_check (Printf.sprintf "corpus#%d" i) t)
    entries

let test_enum_oracle_generated () =
  (* random programs reach shapes the hand-written library does not:
     AMOs, dependencies, odd thread/location counts *)
  let tests =
    Ise_litmus.Gen.generate_suite ~seed:7 ~count:25
      Ise_litmus.Gen.default_params
  in
  List.iteri
    (fun i t -> oracle_check (Printf.sprintf "gen#%d" i) t)
    tests

let test_enum_verdicts_match_reference () =
  (* the user-visible verdict (condition satisfiable in the allowed
     set) is identical whichever engine computes the set *)
  List.iter
    (fun (t : Ise_litmus.Lit_test.t) ->
      List.iter
        (fun cfg ->
          let via_fast = Ise_litmus.Lit_test.satisfiable cfg t in
          let via_ref =
            Outcome.Set.exists
              (Ise_litmus.Lit_test.cond_holds t.Ise_litmus.Lit_test.cond)
              (Check.allowed_ref cfg t.Ise_litmus.Lit_test.threads)
          in
          check Alcotest.bool
            (t.Ise_litmus.Lit_test.name ^ "/" ^ Axiom.name cfg ^ " verdict")
            via_ref via_fast)
        [ Axiom.sc; Axiom.pc; Axiom.wc ])
    Ise_litmus.Library.all

let test_enum_published_tso_outcomes () =
  (* cross-check against the published SPARC-TSO/x86-TSO verdicts,
     which PC models: the store buffer reorders a store past a later
     load of a different location (SB observable), and nothing else —
     load forwarding keeps MP/LB/IRIW/2+2W and per-location coherence
     sequential.  This anchors the fast engine to literature ground
     truth rather than only to our own reference implementation. *)
  let sat = Ise_litmus.Lit_test.satisfiable Axiom.pc in
  let open Ise_litmus.Library in
  check Alcotest.bool "SB relaxed outcome allowed under TSO" true (sat sb);
  check Alcotest.bool "MP violation forbidden under TSO" false (sat mp);
  check Alcotest.bool "LB violation forbidden under TSO" false (sat lb);
  check Alcotest.bool "IRIW split reads forbidden under TSO" false (sat iriw);
  check Alcotest.bool "2+2W violation forbidden under TSO" false
    (sat two_plus_two_w);
  check Alcotest.bool "CoRR violation forbidden under TSO" false (sat corr);
  (* and the fence restores SC on SB, per the TSO literature *)
  check Alcotest.bool "SB+fences forbidden under TSO" false (sat sb_fenced)

let suite =
  [
    ("rel closure", `Quick, test_rel_closure);
    ("rel acyclicity", `Quick, test_rel_acyclic);
    ("rel cycle witness", `Quick, test_rel_cycle_witness);
    ("rel compose", `Quick, test_rel_compose);
    ("rel inverse", `Quick, test_rel_inverse);
    ("rel topological order", `Quick, test_rel_topo);
    qtest prop_closure_idempotent;
    qtest prop_union_commutes;
    ("compile event counts", `Quick, test_compile_event_counts);
    ("compile po", `Quick, test_compile_po);
    ("compile data dep", `Quick, test_compile_data_dep);
    ("compile addr dep", `Quick, test_compile_addr_dep);
    ("compile ctrl dep", `Quick, test_compile_ctrl_dep);
    ("compile amo pair", `Quick, test_compile_amo_pair);
    ("compile faulting mark", `Quick, test_compile_faulting_mark);
    ("enum candidate count", `Quick, test_enum_counts_mp);
    ("enum well-formed", `Quick, test_enum_all_well_formed);
    ("enum amo atomicity", `Quick, test_enum_amo_atomicity);
    ("MP verdicts", `Quick, test_mp_verdicts);
    ("SB verdicts", `Quick, test_sb_verdicts);
    ("model strength ordering", `Quick, test_sc_within_pc_within_wc);
    ("fences restore order", `Quick, test_fence_restores_order);
    ("coherence everywhere", `Quick, test_coherence_all_models);
    ("split-stream MP violation", `Quick, test_split_stream_mp_violation);
    ("same-stream MP safety", `Quick, test_same_stream_mp_no_violation);
    ("fig2 operational race", `Quick, test_fig2_operational);
    ("fig2 outcome spaces", `Quick, test_fig2_outcome_space);
    ("same-stream preservation theorem", `Quick, test_same_stream_preserves_theorems);
    ("split-stream weakening theorem", `Quick, test_split_stream_weakens_theorems);
    ("WC split == same", `Quick, test_split_equals_same_under_wc);
    ("explain forbidden cycle", `Quick, test_explain_forbidden_cycle);
    ("explain allowed witness", `Quick, test_explain_allowed);
    ("explain unreachable", `Quick, test_explain_unreachable);
    ("outcome canonical form", `Quick, test_outcome_canonical);
    ("outcome defaults", `Quick, test_outcome_defaults);
    qtest prop_enum_sc_subset_wc;
    ("enum oracle: litmus library", `Quick, test_enum_oracle_library);
    ("enum oracle: corpus", `Quick, test_enum_oracle_corpus);
    ("enum oracle: generated programs", `Quick, test_enum_oracle_generated);
    ("enum oracle: verdict equality", `Quick, test_enum_verdicts_match_reference);
    ("enum vs published TSO outcomes", `Quick, test_enum_published_tso_outcomes);
  ]
