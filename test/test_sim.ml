open Ise_sim

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let base = Config.default.Config.einject_base

let null_hooks =
  {
    Machine.on_imprecise = (fun _ -> Alcotest.fail "unexpected imprecise");
    on_precise =
      (fun ~core:_ ~addr:_ ~code:_ ~retry:_ -> Alcotest.fail "unexpected precise");
  }

let run_program ?(cfg = Config.default) ?(hooks = `Os) prog =
  let m = Machine.create ~cfg ~programs:[| Sim_instr.of_list prog |] () in
  (match hooks with
   | `Os -> ignore (Ise_os.Handler.install m)
   | `Null -> Machine.set_hooks m null_hooks);
  Machine.run m;
  m

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_in e 5 (fun () -> log := 5 :: !log);
  Engine.schedule_in e 2 (fun () -> log := 2 :: !log);
  Engine.schedule_in e 2 (fun () -> log := 20 :: !log);
  for _ = 1 to 6 do
    Engine.advance e;
    ignore (Engine.run_due e)
  done;
  check (Alcotest.list Alcotest.int) "firing order" [ 5; 20; 2 ] !log

let test_engine_skip () =
  let e = Engine.create () in
  Engine.schedule_in e 100 (fun () -> ());
  check Alcotest.bool "skips" true (Engine.skip_to_next_event e);
  check Alcotest.int "warped" 100 (Engine.now e)

let test_engine_past_raises () =
  let e = Engine.create () in
  Engine.advance e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: in the past")
    (fun () -> Engine.schedule_at e 0 (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

let test_config_variants () =
  let c = Config.default in
  let c2 = Config.with_2x_memory c in
  check Alcotest.int "2x load" (2 * c.Config.dram_load_latency)
    c2.Config.dram_load_latency;
  let c4 = Config.with_4x_store_skew c in
  check Alcotest.int "4x store" (4 * c.Config.dram_load_latency)
    c4.Config.dram_store_latency;
  check Alcotest.int "loads unchanged" c.Config.dram_load_latency
    c4.Config.dram_load_latency

let test_config_pc_inflight () =
  let c = Config.with_consistency Ise_model.Axiom.Pc Config.default in
  check Alcotest.int "PC drains serially" 1 c.Config.sb_max_inflight

let test_config_mesh () =
  let c = Config.default in
  check Alcotest.int "corner to corner" 6 (Config.hops c 0 15);
  check Alcotest.int "self" 0 (Config.hops c 5 5)

(* ------------------------------------------------------------------ *)
(* Einject                                                             *)

let test_einject_basic () =
  let e = Einject.create ~base:0x1000 ~pages:4 ~page_bits:12 in
  check Alcotest.bool "in region" true (Einject.contains e 0x1000);
  check Alcotest.bool "outside" false (Einject.contains e 0x5000);
  Einject.set_faulting e 0x2123;
  check Alcotest.bool "page marked" true (Einject.is_faulting e 0x2fff);
  check Alcotest.bool "other page clear" false (Einject.is_faulting e 0x1000);
  Einject.clear_faulting e 0x2000;
  check Alcotest.bool "cleared" false (Einject.is_faulting e 0x2123)

let test_einject_outside_ignored () =
  let e = Einject.create ~base:0x1000 ~pages:4 ~page_bits:12 in
  (* below and above the region: both MMIO registers are dead writes *)
  Einject.set_faulting e 0x0fff;
  Einject.set_faulting e 0x9000;
  Einject.set_faulting e 0x5000;
  (* one past the last page *)
  check Alcotest.int "nothing marked" 0 (Einject.faulting_pages e);
  Einject.clear_faulting e 0x9000;
  check Alcotest.int "clr outside harmless" 0 (Einject.faulting_pages e);
  check Alcotest.bool "outside never faults" false (Einject.is_faulting e 0x9000)

let test_einject_idempotent () =
  let e = Einject.create ~base:0x1000 ~pages:4 ~page_bits:12 in
  (* set/set and clr/clr are idempotent, like MMIO bitmap writes *)
  Einject.set_faulting e 0x2000;
  Einject.set_faulting e 0x2abc;
  check Alcotest.int "one page marked" 1 (Einject.faulting_pages e);
  Einject.clear_faulting e 0x2fff;
  Einject.clear_faulting e 0x2000;
  check Alcotest.int "clear is idempotent" 0 (Einject.faulting_pages e);
  Einject.clear_faulting e 0x3000;
  (* clr of an unmarked page *)
  check Alcotest.int "still none" 0 (Einject.faulting_pages e)

let test_einject_page_boundary () =
  let e = Einject.create ~base:0x1000 ~pages:4 ~page_bits:12 in
  (* marking the last byte of a page marks that page alone *)
  Einject.set_faulting e 0x2fff;
  check Alcotest.bool "first byte of page" true (Einject.is_faulting e 0x2000);
  check Alcotest.bool "next page clear" false (Einject.is_faulting e 0x3000);
  check Alcotest.bool "previous page clear" false
    (Einject.is_faulting e 0x1fff);
  (* first and last pages of the region are reachable *)
  Einject.set_faulting e 0x1000;
  Einject.set_faulting e 0x4fff;
  check Alcotest.int "three pages marked" 3 (Einject.faulting_pages e);
  Einject.clear_all e;
  check Alcotest.int "clear_all" 0 (Einject.faulting_pages e)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_hit_miss () =
  let c = Cache.create ~sets:4 ~ways:2 () in
  check (Alcotest.option Alcotest.bool) "miss" None
    (Option.map (fun _ -> true) (Cache.lookup c 42));
  ignore (Cache.insert c 42 Cache.Shared);
  check Alcotest.bool "hit" true (Cache.lookup c 42 = Some Cache.Shared);
  check Alcotest.int "one hit" 1 (Cache.hits c);
  check Alcotest.int "one miss" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~ways:2 () in
  ignore (Cache.insert c 0 Cache.Shared);
  ignore (Cache.insert c 1 Cache.Shared);
  ignore (Cache.lookup c 0);
  (* block 1 is now LRU *)
  let evicted = Cache.insert c 2 Cache.Shared in
  check (Alcotest.option Alcotest.int) "evicts LRU" (Some 1) evicted;
  check Alcotest.bool "0 still present" true (Cache.probe c 0 <> None)

let test_cache_state_transitions () =
  let c = Cache.create ~sets:4 ~ways:2 () in
  ignore (Cache.insert c 7 Cache.Exclusive);
  Cache.set_state c 7 Cache.Modified;
  check Alcotest.bool "modified" true (Cache.probe c 7 = Some Cache.Modified);
  Cache.invalidate c 7;
  check Alcotest.bool "gone" true (Cache.probe c 7 = None)

(* ------------------------------------------------------------------ *)
(* Memsys                                                              *)

let mk_memsys () =
  let cfg = Config.default in
  let engine = Engine.create () in
  let einj =
    Einject.create ~base:cfg.Config.einject_base ~pages:cfg.Config.einject_pages
      ~page_bits:cfg.Config.page_bits
  in
  (engine, einj, Memsys.create cfg engine einj)

let drain engine =
  let guard = ref 0 in
  while Engine.pending engine > 0 && !guard < 100_000 do
    Engine.advance engine;
    ignore (Engine.run_due engine);
    incr guard
  done

let test_memsys_write_read () =
  let engine, _, ms = mk_memsys () in
  let got = ref (-1) in
  Memsys.request ms ~core:0 ~addr:0x1000 (Memsys.Write { data = 77; mask = 0xFF })
    (fun _ -> ());
  drain engine;
  Memsys.request ms ~core:0 ~addr:0x1000 Memsys.Read (fun r ->
      match r with Memsys.Value v -> got := v | _ -> ());
  drain engine;
  check Alcotest.int "read back" 77 !got;
  check Alcotest.int "oracle" 77 (Memsys.peek ms 0x1000)

let test_memsys_hit_faster_than_miss () =
  let engine, _, ms = mk_memsys () in
  let t_done = ref 0 in
  Memsys.request ms ~core:0 ~addr:0x2000 Memsys.Read (fun _ ->
      t_done := Engine.now engine);
  drain engine;
  let miss_latency = !t_done in
  let start = Engine.now engine in
  Memsys.request ms ~core:0 ~addr:0x2000 Memsys.Read (fun _ ->
      t_done := Engine.now engine);
  drain engine;
  let hit_latency = !t_done - start in
  check Alcotest.bool "hit faster" true (hit_latency < miss_latency);
  check Alcotest.int "hit = l1 latency" Config.default.Config.l1_latency
    hit_latency

let test_memsys_denial () =
  let engine, einj, ms = mk_memsys () in
  Einject.set_faulting einj base;
  let result = ref None in
  Memsys.request ms ~core:0 ~addr:base (Memsys.Write { data = 1; mask = 0xFF })
    (fun r -> result := Some r);
  drain engine;
  (match !result with
   | Some (Memsys.Denied Ise_core.Fault.Bus_error) -> ()
   | _ -> Alcotest.fail "expected denial");
  check Alcotest.int "value not written" 0 (Memsys.peek ms base);
  check Alcotest.int "denial recorded" 1 (Memsys.denials ms)

let test_memsys_amo () =
  let engine, _, ms = mk_memsys () in
  Memsys.poke ms 0x3000 10;
  let old = ref (-1) in
  Memsys.request ms ~core:0 ~addr:0x3000 (Memsys.Atomic (Memsys.Add 5)) (fun r ->
      match r with Memsys.Value v -> old := v | _ -> ());
  drain engine;
  check Alcotest.int "old value" 10 !old;
  check Alcotest.int "updated" 15 (Memsys.peek ms 0x3000)

let test_memsys_byte_mask () =
  let engine, _, ms = mk_memsys () in
  Memsys.poke ms 0x4000 0x1122334455667788;
  Memsys.request ms ~core:0 ~addr:0x4000 (Memsys.Write { data = 0xFF; mask = 0x01 })
    (fun _ -> ());
  drain engine;
  check Alcotest.bool "only low byte replaced" true
    (Memsys.peek ms 0x4000 = 0x11223344556677FF)

let test_memsys_invalidation_counted () =
  let engine, _, ms = mk_memsys () in
  (* core 1 reads, core 2 writes: the write invalidates core 1 *)
  Memsys.request ms ~core:1 ~addr:0x5000 Memsys.Read (fun _ -> ());
  drain engine;
  Memsys.request ms ~core:2 ~addr:0x5000 (Memsys.Write { data = 3; mask = 0xFF })
    (fun _ -> ());
  drain engine;
  check Alcotest.bool "invalidations happened" true (Memsys.invalidations ms >= 1)

let test_memsys_same_block_serialises () =
  let engine, _, ms = mk_memsys () in
  let order = ref [] in
  Memsys.request ms ~core:0 ~addr:0x6000 (Memsys.Write { data = 1; mask = 0xFF })
    (fun _ -> order := 1 :: !order);
  Memsys.request ms ~core:1 ~addr:0x6000 (Memsys.Write { data = 2; mask = 0xFF })
    (fun _ -> order := 2 :: !order);
  drain engine;
  check (Alcotest.list Alcotest.int) "arrival order" [ 2; 1 ] !order;
  check Alcotest.int "last write wins" 2 (Memsys.peek ms 0x6000)

(* ------------------------------------------------------------------ *)
(* Store buffer                                                        *)

let test_sb_pc_fifo () =
  let sb = Sb.create ~capacity:8 ~mode:Ise_model.Axiom.Pc in
  ignore (Sb.push sb ~seq:0 ~addr:0x0 ~data:1 ~mask:0xFF);
  ignore (Sb.push sb ~seq:1 ~addr:0x8 ~data:2 ~mask:0xFF);
  (match Sb.drainable sb ~max_inflight:4 with
   | [ e ] -> check Alcotest.int "head first" 0 e.Sb.seq
   | l -> Alcotest.fail (Printf.sprintf "expected 1 drain, got %d" (List.length l)));
  let e = List.hd (Sb.drainable sb ~max_inflight:4) in
  Sb.mark_inflight sb e;
  check (Alcotest.list Alcotest.int) "PC: one at a time" []
    (List.map (fun e -> e.Sb.seq) (Sb.drainable sb ~max_inflight:4))

let test_sb_wc_concurrent () =
  let sb = Sb.create ~capacity:8 ~mode:Ise_model.Axiom.Wc in
  ignore (Sb.push sb ~seq:0 ~addr:0x0 ~data:1 ~mask:0xFF);
  ignore (Sb.push sb ~seq:1 ~addr:0x8 ~data:2 ~mask:0xFF);
  check Alcotest.int "both drainable" 2
    (List.length (Sb.drainable sb ~max_inflight:4))

let test_sb_wc_coalesce () =
  let sb = Sb.create ~capacity:8 ~mode:Ise_model.Axiom.Wc in
  ignore (Sb.push sb ~seq:0 ~addr:0x10 ~data:1 ~mask:0xFF);
  ignore (Sb.push sb ~seq:1 ~addr:0x10 ~data:2 ~mask:0xFF);
  check Alcotest.int "coalesced" 1 (Sb.length sb);
  check (Alcotest.option Alcotest.int) "newest value" (Some 2)
    (Sb.forward sb ~addr:0x10)

let test_sb_same_word_order () =
  let sb = Sb.create ~capacity:8 ~mode:Ise_model.Axiom.Wc in
  ignore (Sb.push sb ~seq:0 ~addr:0x20 ~data:1 ~mask:0xFF);
  let e0 = List.hd (Sb.drainable sb ~max_inflight:4) in
  Sb.mark_inflight sb e0;
  (* a same-word store pushed while the first is inflight cannot
     coalesce (the first is no longer waiting) nor drain before it *)
  ignore (Sb.push sb ~seq:1 ~addr:0x20 ~data:2 ~mask:0xFF);
  check (Alcotest.list Alcotest.int) "blocked behind inflight same word" []
    (List.map (fun e -> e.Sb.seq) (Sb.drainable sb ~max_inflight:4))

let test_sb_fault_keeps_entry () =
  let sb = Sb.create ~capacity:8 ~mode:Ise_model.Axiom.Wc in
  ignore (Sb.push sb ~seq:0 ~addr:0x30 ~data:1 ~mask:0xFF);
  let e = List.hd (Sb.drainable sb ~max_inflight:4) in
  Sb.mark_inflight sb e;
  Sb.mark_faulted sb e Ise_core.Fault.Bus_error;
  check Alcotest.bool "fault flagged" true (Sb.has_fault sb);
  check Alcotest.int "entry stays" 1 (Sb.length sb);
  check Alcotest.int "no longer inflight" 0 (Sb.inflight sb)

let test_sb_capacity () =
  let sb = Sb.create ~capacity:2 ~mode:Ise_model.Axiom.Pc in
  ignore (Sb.push sb ~seq:0 ~addr:0x0 ~data:1 ~mask:0xFF);
  ignore (Sb.push sb ~seq:1 ~addr:0x8 ~data:2 ~mask:0xFF);
  check Alcotest.bool "full rejects" false
    (Sb.push sb ~seq:2 ~addr:0x10 ~data:3 ~mask:0xFF)

(* ------------------------------------------------------------------ *)
(* Core + Machine                                                      *)

let st a v = Sim_instr.St { addr = Sim_instr.addr a; data = Sim_instr.Imm v }
let ld r a = Sim_instr.Ld { dst = r; addr = Sim_instr.addr a }

let test_machine_plain_run () =
  let m = run_program ~hooks:`Null [ st base 42; Sim_instr.Fence; ld 0 base ] in
  check Alcotest.int "value" 42 (Core.reg (Machine.core m 0) 0);
  check Alcotest.int "retired" 3 (Machine.total_retired m);
  check Alcotest.bool "contract trivially ok" true
    (Stdlib.Result.is_ok (Machine.check_contract m))

let test_machine_forwarding () =
  (* load after store to same address, no fence: must forward *)
  let m = run_program ~hooks:`Null [ st base 5; ld 0 base ] in
  check Alcotest.int "forwarded" 5 (Core.reg (Machine.core m 0) 0)

let test_machine_store_reg_data () =
  let m =
    run_program ~hooks:`Null
      [ st base 9; Sim_instr.Fence; ld 0 base;
        Sim_instr.St { addr = Sim_instr.addr (base + 64); data = Sim_instr.From_reg 0 } ]
  in
  check Alcotest.int "dependent store data" 9 (Machine.read_word m (base + 64))

let test_machine_amo () =
  let m =
    run_program ~hooks:`Null
      [ st base 10; Sim_instr.Fence;
        Sim_instr.Amo { dst = 0; addr = Sim_instr.addr base; op = Memsys.Add 7 } ]
  in
  check Alcotest.int "amo old" 10 (Core.reg (Machine.core m 0) 0);
  check Alcotest.int "amo result" 17 (Machine.read_word m base)

let test_machine_imprecise_flow () =
  let m =
    Machine.create ~programs:[| Sim_instr.of_list [ st base 99; ld 0 (base + 64) ] |] ()
  in
  let os = Ise_os.Handler.install m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  let cs = Core.stats (Machine.core m 0) in
  check Alcotest.int "one imprecise exception" 1 cs.Core.imprecise_exceptions;
  check Alcotest.int "store applied by OS" 99 (Machine.read_word m base);
  check Alcotest.bool "handler ran" true (os.Ise_os.Handler.invocations >= 1);
  check Alcotest.bool "contract holds" true
    (Stdlib.Result.is_ok (Machine.check_contract m))

let test_machine_precise_load_flow () =
  let m = Machine.create ~programs:[| Sim_instr.of_list [ ld 0 base ] |] () in
  let os = Ise_os.Handler.install m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.int "one precise fault" 1 os.Ise_os.Handler.precise_faults;
  check Alcotest.int "load retried, reads 0" 0 (Core.reg (Machine.core m 0) 0)

let test_machine_sc_store_precise () =
  let cfg = Config.with_consistency Ise_model.Axiom.Sc Config.default in
  let m = Machine.create ~cfg ~programs:[| Sim_instr.of_list [ st base 7 ] |] () in
  let os = Ise_os.Handler.install m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.int "precise, not imprecise" 1 os.Ise_os.Handler.precise_faults;
  check Alcotest.int "no imprecise" 0
    (Core.stats (Machine.core m 0)).Core.imprecise_exceptions;
  check Alcotest.int "store completed" 7 (Machine.read_word m base)

let test_machine_replay_after_exception () =
  (* instructions after the faulting store must re-execute and produce
     correct results *)
  let m =
    Machine.create
      ~programs:
        [| Sim_instr.of_list
             [ st base 1; ld 0 (base + 4096); st (base + 8192) 3;
               ld 1 (base + 8192) ] |]
      ()
  in
  ignore (Ise_os.Handler.install m);
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.int "first store" 1 (Machine.read_word m base);
  check Alcotest.int "later store" 3 (Machine.read_word m (base + 8192));
  check Alcotest.int "later load sees it" 3 (Core.reg (Machine.core m 0) 1)

let test_machine_terminate () =
  let m = Machine.create ~programs:[| Sim_instr.of_list [ st base 1 ] |] () in
  Machine.set_hooks m null_hooks;
  Core.terminate (Machine.core m 0);
  check Alcotest.bool "terminated is done" true (Core.is_done (Machine.core m 0));
  check Alcotest.bool "flag" true (Core.is_terminated (Machine.core m 0))

let test_machine_multicore_communication () =
  let x = base and y = base + 4096 in
  let prog0 = [ st x 1; Sim_instr.Fence; st y 1 ] in
  (* delay the consumer long enough that the producer has drained;
     the fence keeps the loads from issuing past the delay *)
  let prog1 =
    [ Sim_instr.Nop 2000; Sim_instr.Fence; ld 0 y; Sim_instr.Fence; ld 1 x ]
  in
  let m =
    Machine.create
      ~programs:[| Sim_instr.of_list prog0; Sim_instr.of_list prog1 |] ()
  in
  Machine.set_hooks m null_hooks;
  Machine.run m;
  check Alcotest.int "y visible" 1 (Core.reg (Machine.core m 1) 0);
  check Alcotest.int "x visible" 1 (Core.reg (Machine.core m 1) 1)

(* Reference interpreter: single-core programs must end with the same
   memory as sequential execution, faults or not. *)
let reference_memory prog =
  let mem = Hashtbl.create 16 in
  let regs = Array.make 64 0 in
  let read a = try Hashtbl.find mem (a lsr 3) with Not_found -> 0 in
  List.iter
    (fun i ->
      match i with
      | Sim_instr.Ld { dst; addr } -> regs.(dst) <- read addr.Sim_instr.base
      | Sim_instr.St { addr; data } ->
        let v =
          match data with
          | Sim_instr.Imm v -> v
          | Sim_instr.From_reg r -> regs.(r)
        in
        Hashtbl.replace mem (addr.Sim_instr.base lsr 3) v
      | Sim_instr.Amo { dst; addr; op } ->
        let old = read addr.Sim_instr.base in
        regs.(dst) <- old;
        let v = match op with Memsys.Swap v -> v | Memsys.Add v -> old + v in
        Hashtbl.replace mem (addr.Sim_instr.base lsr 3) v
      | Sim_instr.Fence | Sim_instr.Ctrl _ | Sim_instr.Nop _ -> ())
    prog;
  mem

let random_program rng n =
  let open Ise_util in
  List.init n (fun _ ->
      let a = base + (8 * Rng.int rng 64) in
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> st a (1 + Rng.int rng 100)
      | 4 | 5 | 6 ->
        Sim_instr.Ld { dst = Rng.int rng 8; addr = Sim_instr.addr a }
      | 7 -> Sim_instr.Fence
      | 8 -> Sim_instr.Amo { dst = Rng.int rng 8; addr = Sim_instr.addr a;
                             op = Memsys.Add 1 }
      | _ -> Sim_instr.Nop (1 + Rng.int rng 3))

let prop_single_core_sequential_memory =
  QCheck.Test.make
    ~name:"single-core final memory equals sequential reference (no faults)"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let prog = random_program rng 40 in
      let m = run_program ~hooks:`Null prog in
      let reference = reference_memory prog in
      Hashtbl.fold
        (fun w v ok -> ok && Machine.read_word m (w lsl 3) = v)
        reference true)

let prop_single_core_transparent_faults =
  QCheck.Test.make
    ~name:"fault injection is transparent to single-core results" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let prog = random_program rng 30 in
      let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
      ignore (Ise_os.Handler.install m);
      (* mark the whole working set faulting *)
      Einject.set_faulting (Machine.einject m) base;
      Machine.run m;
      let reference = reference_memory prog in
      Hashtbl.fold
        (fun w v ok -> ok && Machine.read_word m (w lsl 3) = v)
        reference true)

(* ------------------------------------------------------------------ *)
(* Midgard                                                             *)

let test_midgard_vma_membership () =
  let mg = Midgard.create () in
  Midgard.add_vma mg ~base:0x1000_0000 ~bytes:(64 * 4096);
  check Alcotest.bool "inside" true (Midgard.in_vma mg 0x1000_2000);
  check Alcotest.bool "outside" false (Midgard.in_vma mg 0x2000_0000)

let test_midgard_mapping () =
  let mg = Midgard.create () in
  Midgard.add_vma mg ~base:0x1000_0000 ~bytes:(4 * 4096);
  check Alcotest.bool "starts unmapped" false (Midgard.is_mapped mg 0x1000_0000);
  Midgard.map_page mg 0x1000_0123;
  check Alcotest.bool "mapped" true (Midgard.is_mapped mg 0x1000_0fff);
  Midgard.unmap_page mg 0x1000_0000;
  check Alcotest.bool "unmapped" false (Midgard.is_mapped mg 0x1000_0000);
  Midgard.map_all mg;
  check Alcotest.int "all pages" 4 (Midgard.pages_mapped mg)

let test_midgard_interceptor_denies () =
  let mg = Midgard.create () in
  let region = 0x1000_0000 in
  Midgard.add_vma mg ~base:region ~bytes:4096;
  let engine, _, ms = mk_memsys () in
  Memsys.add_interceptor ms (Midgard.interceptor mg);
  let result = ref None in
  Memsys.request ms ~core:0 ~addr:region (Memsys.Write { data = 1; mask = 0xFF })
    (fun r -> result := Some r);
  drain engine;
  (match !result with
   | Some (Memsys.Denied Ise_core.Fault.Page_fault) -> ()
   | _ -> Alcotest.fail "expected Midgard page fault");
  check Alcotest.int "fault recorded" 1 (Midgard.faults_taken mg);
  (* after the OS maps the page the access succeeds and pays the walk *)
  Midgard.map_page mg region;
  Memsys.request ms ~core:0 ~addr:region (Memsys.Write { data = 7; mask = 0xFF })
    (fun r -> result := Some r);
  drain engine;
  check Alcotest.bool "mapped access succeeds" true (!result = Some (Memsys.Value 0));
  check Alcotest.int "value written" 7 (Memsys.peek ms region);
  check Alcotest.bool "walks counted" true (Midgard.walks_performed mg >= 2)

let test_midgard_imprecise_store_flow () =
  (* the Example-2 scenario end to end: a store passes the front-end,
     retires, misses the LLC, and faults during the back-end
     translation; the OS maps the page and applies the store *)
  let mg = Midgard.create () in
  let region = base + 0x0800_0000 in
  (* outside the EInject marks *)
  Midgard.add_vma mg ~base:region ~bytes:(16 * 4096);
  let m = Machine.create ~programs:[| Sim_instr.of_list [ st region 77 ] |] () in
  Memsys.add_interceptor (Machine.mem m) (Midgard.interceptor mg);
  let config =
    { Ise_os.Handler.costs = Ise_core.Batch.default_cost_model;
      policy = Ise_os.Handler.Midgard_paging { midgard = mg; major_pct = 0; io_latency = 0 } }
  in
  ignore (Ise_os.Handler.install ~config m);
  Machine.run m;
  check Alcotest.int "imprecise exception taken" 1
    (Core.stats (Machine.core m 0)).Core.imprecise_exceptions;
  check Alcotest.int "store applied after mapping" 77 (Machine.read_word m region);
  check Alcotest.bool "page now mapped" true (Midgard.is_mapped mg region)

(* ------------------------------------------------------------------ *)
(* Interrupts                                                          *)

let test_interrupt_pauses_core () =
  let m =
    Machine.create
      ~programs:[| Sim_instr.of_list (List.init 50 (fun i -> st (base + 8 * i) i)) |]
      ()
  in
  ignore (Ise_os.Handler.install m);
  Machine.enable_timer_interrupts m ~period:200 ~handler_cycles:100;
  Machine.run m;
  check Alcotest.bool "interrupts fired" true (Machine.interrupts_taken m >= 1)

let test_interrupt_deferred_during_handler () =
  (* exceptions in flight mask the timer (IE bit) *)
  let prog = List.init 8 (fun i -> st (base + (i * 4096)) (i + 1)) in
  let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
  ignore (Ise_os.Handler.install m);
  for i = 0 to 7 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.enable_timer_interrupts m ~period:150 ~handler_cycles:50;
  Machine.run m;
  check Alcotest.bool "some deliveries deferred by IE" true
    (Machine.interrupts_deferred m >= 1);
  (* correctness is unaffected *)
  for i = 0 to 7 do
    check Alcotest.int "store landed" (i + 1)
      (Machine.read_word m (base + (i * 4096)))
  done

let test_interrupt_defers_exception_episode () =
  (* a fault arriving while the interrupt handler runs must wait for
     the handler to return before the episode starts *)
  let m = Machine.create ~programs:[| Sim_instr.of_list [ st base 9 ] |] () in
  ignore (Ise_os.Handler.install m);
  Einject.set_faulting (Machine.einject m) base;
  (* interrupt immediately, long handler: the drain response (~100
     cycles) lands inside it *)
  Machine.enable_timer_interrupts m ~period:20 ~handler_cycles:400;
  Machine.run m;
  check Alcotest.int "exception still handled exactly once" 1
    (Core.stats (Machine.core m 0)).Core.imprecise_exceptions;
  check Alcotest.int "store applied" 9 (Machine.read_word m base)

let prop_multicore_disjoint_transparency =
  QCheck.Test.make
    ~name:"2-core disjoint-range programs: faults are transparent" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let mk_prog offset n =
        List.init n (fun _ ->
            let a = base + offset + (8 * Ise_util.Rng.int rng 32) in
            if Ise_util.Rng.int rng 3 = 0 then
              Sim_instr.Ld { dst = Ise_util.Rng.int rng 8; addr = Sim_instr.addr a }
            else
              Sim_instr.St
                { addr = Sim_instr.addr a;
                  data = Sim_instr.Imm (1 + Ise_util.Rng.int rng 50) })
      in
      let p0 = mk_prog 0 20 and p1 = mk_prog 8192 20 in
      let run inject =
        let m =
          Machine.create
            ~programs:[| Sim_instr.of_list p0; Sim_instr.of_list p1 |] ()
        in
        ignore (Ise_os.Handler.install m);
        if inject then begin
          Einject.set_faulting (Machine.einject m) base;
          Einject.set_faulting (Machine.einject m) (base + 8192)
        end;
        Machine.run m;
        List.map (fun w -> Machine.read_word m w)
          (List.init 64 (fun i -> base + (8 * i))
           @ List.init 64 (fun i -> base + 8192 + (8 * i)))
      in
      run false = run true)

let suite =
  [
    ("engine event order", `Quick, test_engine_order);
    ("engine skip to next", `Quick, test_engine_skip);
    ("engine rejects the past", `Quick, test_engine_past_raises);
    ("config latency variants", `Quick, test_config_variants);
    ("config PC inflight", `Quick, test_config_pc_inflight);
    ("config mesh distance", `Quick, test_config_mesh);
    ("einject mark/clear", `Quick, test_einject_basic);
    ("einject ignores outside", `Quick, test_einject_outside_ignored);
    ("einject set/clr idempotent", `Quick, test_einject_idempotent);
    ("einject page boundaries", `Quick, test_einject_page_boundary);
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache state transitions", `Quick, test_cache_state_transitions);
    ("memsys write/read", `Quick, test_memsys_write_read);
    ("memsys hit faster than miss", `Quick, test_memsys_hit_faster_than_miss);
    ("memsys EInject denial", `Quick, test_memsys_denial);
    ("memsys atomic", `Quick, test_memsys_amo);
    ("memsys byte mask", `Quick, test_memsys_byte_mask);
    ("memsys invalidations", `Quick, test_memsys_invalidation_counted);
    ("memsys per-block serialisation", `Quick, test_memsys_same_block_serialises);
    ("sb PC fifo", `Quick, test_sb_pc_fifo);
    ("sb WC concurrency", `Quick, test_sb_wc_concurrent);
    ("sb WC coalescing", `Quick, test_sb_wc_coalesce);
    ("sb same-word order", `Quick, test_sb_same_word_order);
    ("sb fault keeps entry", `Quick, test_sb_fault_keeps_entry);
    ("sb capacity", `Quick, test_sb_capacity);
    ("machine plain run", `Quick, test_machine_plain_run);
    ("machine store forwarding", `Quick, test_machine_forwarding);
    ("machine dependent store data", `Quick, test_machine_store_reg_data);
    ("machine amo", `Quick, test_machine_amo);
    ("machine imprecise flow", `Quick, test_machine_imprecise_flow);
    ("machine precise load flow", `Quick, test_machine_precise_load_flow);
    ("machine SC store is precise", `Quick, test_machine_sc_store_precise);
    ("machine replay after exception", `Quick, test_machine_replay_after_exception);
    ("machine terminate", `Quick, test_machine_terminate);
    ("machine multicore communication", `Quick, test_machine_multicore_communication);
    qtest prop_single_core_sequential_memory;
    qtest prop_single_core_transparent_faults;
    ("midgard vma membership", `Quick, test_midgard_vma_membership);
    ("midgard mapping", `Quick, test_midgard_mapping);
    ("midgard interceptor denies", `Quick, test_midgard_interceptor_denies);
    ("midgard imprecise store flow", `Quick, test_midgard_imprecise_store_flow);
    ("interrupt pauses core", `Quick, test_interrupt_pauses_core);
    ("interrupt deferred during handler", `Quick, test_interrupt_deferred_during_handler);
    ("interrupt defers exception episode", `Quick, test_interrupt_defers_exception_episode);
    qtest prop_multicore_disjoint_transparency;
  ]
