let () =
  Alcotest.run "ise"
    [
      ("util", Test_util.suite);
      ("rel", Test_rel.suite);
      ("model", Test_model.suite);
      ("litmus", Test_litmus.suite);
      ("sim", Test_sim.suite);
      ("core", Test_core.suite);
      ("os", Test_os.suite);
      ("aso", Test_aso.suite);
      ("workload", Test_workload.suite);
      ("telemetry", Test_telemetry.suite);
      ("fuzz", Test_fuzz.suite);
      ("pool", Test_pool.suite);
      ("serve", Test_serve.suite);
      ("fabric", Test_fabric.suite);
      ("chaos", Test_chaos.suite);
      ("obs", Test_obs.suite);
      ("integration", Test_integration.suite);
    ]
