open Ise_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let record ?(core = 0) ?(code = Fault.Bus_error) seq addr data =
  { Fault.core; seq; addr; data; byte_mask = 0xFF; code }

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)

let test_fault_severity () =
  (* every code, so a new constructor cannot silently default *)
  check Alcotest.bool "no exception recoverable" true
    (Fault.severity_of Fault.No_exception = Fault.Recoverable);
  check Alcotest.bool "page fault recoverable" true
    (Fault.severity_of Fault.Page_fault = Fault.Recoverable);
  check Alcotest.bool "protection fault irrecoverable" true
    (Fault.severity_of Fault.Protection_fault = Fault.Irrecoverable);
  check Alcotest.bool "bus error recoverable" true
    (Fault.severity_of Fault.Bus_error = Fault.Recoverable);
  check Alcotest.bool "accelerator recoverable" true
    (Fault.severity_of (Fault.Accelerator 3) = Fault.Recoverable);
  check Alcotest.bool "accelerator code 0 recoverable" true
    (Fault.severity_of (Fault.Accelerator 0) = Fault.Recoverable)

let test_fault_x86_taxonomy () =
  (* Table 1: machine checks are the only hierarchy-origin exception *)
  let aborts =
    List.filter (fun e -> e.Fault.cls = Fault.Abort) Fault.x86_taxonomy
  in
  check Alcotest.int "one abort row" 1 (List.length aborts);
  check Alcotest.bool "machine check in aborts" true
    (List.exists
       (fun e -> List.mem "Machine Check" e.Fault.names)
       aborts);
  check Alcotest.bool "page fault is a memory-stage fault" true
    (List.exists
       (fun e ->
         e.Fault.cls = Fault.Fault && e.Fault.stage = "Memory"
         && List.mem "Page fault" e.Fault.names)
       Fault.x86_taxonomy)

(* ------------------------------------------------------------------ *)
(* Fsb                                                                 *)

let test_fsb_sysregs () =
  let fsb = Fsb.create ~entries:8 ~base:0x7000_0000 () in
  check Alcotest.int "base" 0x7000_0000 (Fsb.base fsb);
  check Alcotest.int "mask" 7 (Fsb.mask fsb);
  check Alcotest.int "head" 0 (Fsb.head fsb);
  check Alcotest.int "tail" 0 (Fsb.tail fsb);
  check Alcotest.bool "empty" true (Fsb.is_empty fsb)

let test_fsb_fifo () =
  let fsb = Fsb.create ~entries:8 ~base:0 () in
  for i = 0 to 4 do
    check Alcotest.bool "append ok" true (Fsb.fsbc_append fsb (record i (8 * i) i))
  done;
  check Alcotest.int "tail advanced" 5 (Fsb.tail fsb);
  let drained = Fsb.os_drain_all fsb in
  check (Alcotest.list Alcotest.int) "interface order"
    [ 0; 1; 2; 3; 4 ]
    (List.map (fun r -> r.Fault.seq) drained);
  check Alcotest.int "head caught tail" (Fsb.tail fsb) (Fsb.head fsb)

let test_fsb_full () =
  let fsb = Fsb.create ~entries:2 ~base:0 () in
  ignore (Fsb.fsbc_append fsb (record 0 0 0));
  ignore (Fsb.fsbc_append fsb (record 1 8 1));
  check Alcotest.bool "full rejects" false (Fsb.fsbc_append fsb (record 2 16 2));
  (* a refused append changes nothing: pointers, pending, stats *)
  check Alcotest.int "pending unchanged" 2 (Fsb.pending fsb);
  check Alcotest.int "tail unchanged" 2 (Fsb.tail fsb);
  check Alcotest.int "appends not counted" 2 (Fsb.total_appended fsb)

let test_fsb_capacity () =
  let fsb = Fsb.create ~entries:8 ~base:0 () in
  check Alcotest.int "capacity = entries" (Fsb.entries fsb) (Fsb.capacity fsb);
  check Alcotest.bool "full iff pending = capacity" false (Fsb.is_full fsb);
  for i = 0 to Fsb.capacity fsb - 1 do
    ignore (Fsb.fsbc_append fsb (record i (8 * i) i))
  done;
  check Alcotest.bool "now full" true (Fsb.is_full fsb);
  (* non-power-of-two sizes would alias ring slots under the mask *)
  List.iter
    (fun n ->
      check Alcotest.bool
        (Printf.sprintf "entries=%d rejected" n)
        true
        (match Fsb.create ~entries:n ~base:0 () with
         | _ -> false
         | exception Invalid_argument _ -> true))
    [ 0; -1; 3; 6; 12 ]

let test_fsb_peek_advance () =
  let fsb = Fsb.create ~entries:4 ~base:0 () in
  ignore (Fsb.fsbc_append fsb (record 0 0 10));
  (match Fsb.os_peek fsb with
   | Some r -> check Alcotest.int "peek data" 10 r.Fault.data
   | None -> Alcotest.fail "expected entry");
  Fsb.os_advance fsb;
  check Alcotest.bool "empty after advance" true (Fsb.is_empty fsb);
  Alcotest.check_raises "advance empty"
    (Failure "Fsb.os_advance: head has caught up with tail") (fun () ->
      Fsb.os_advance fsb)

let test_fsb_watermark () =
  let fsb = Fsb.create ~entries:8 ~base:0 () in
  for i = 0 to 3 do
    ignore (Fsb.fsbc_append fsb (record i 0 0))
  done;
  ignore (Fsb.os_drain_all fsb);
  ignore (Fsb.fsbc_append fsb (record 9 0 0));
  check Alcotest.int "watermark" 4 (Fsb.high_watermark fsb);
  check Alcotest.int "total" 5 (Fsb.total_appended fsb)

let prop_fsb_order_preserving =
  QCheck.Test.make ~name:"FSB preserves append order across mixed ops" ~count:200
    QCheck.(list (int_range 0 1))
    (fun ops ->
      let fsb = Fsb.create ~entries:16 ~base:0 () in
      let seq = ref 0 in
      let appended = ref [] and drained = ref [] in
      List.iter
        (fun op ->
          if op = 0 then begin
            if Fsb.fsbc_append fsb (record !seq 0 0) then begin
              appended := !seq :: !appended;
              incr seq
            end
          end
          else
            match Fsb.os_peek fsb with
            | Some r ->
              Fsb.os_advance fsb;
              drained := r.Fault.seq :: !drained
            | None -> ())
        ops;
      let final =
        List.rev !drained
        @ List.map (fun r -> r.Fault.seq) (Fsb.os_drain_all fsb)
      in
      final = List.rev !appended)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let entry p f = { Protocol.payload = p; faulting = f }

let test_protocol_same_stream () =
  let routing =
    Protocol.route Protocol.Same_stream [ entry 1 false; entry 2 true; entry 3 false ]
  in
  check (Alcotest.list Alcotest.int) "all to fsb, in order" [ 1; 2; 3 ]
    routing.Protocol.to_fsb;
  check (Alcotest.list Alcotest.int) "nothing to memory" []
    routing.Protocol.to_memory

let test_protocol_split_stream () =
  let routing =
    Protocol.route Protocol.Split_stream
      [ entry 1 false; entry 2 true; entry 3 false; entry 4 true ]
  in
  check (Alcotest.list Alcotest.int) "faulting to fsb" [ 2; 4 ]
    routing.Protocol.to_fsb;
  check (Alcotest.list Alcotest.int) "clean to memory" [ 1; 3 ]
    routing.Protocol.to_memory

let test_protocol_barrier_requirement () =
  check Alcotest.bool "split needs a barrier" true
    (Protocol.requires_barrier Protocol.Split_stream);
  check Alcotest.bool "same stream does not" false
    (Protocol.requires_barrier Protocol.Same_stream)

let test_protocol_priority () =
  (* imprecise exceptions beat precise ones (§5.3) *)
  let p =
    Protocol.priority
      [ Protocol.Precise { po_index = 1 };
        Protocol.Imprecise { oldest_store_seq = 9 };
        Protocol.Imprecise { oldest_store_seq = 4 } ]
  in
  (match p with
   | Some (Protocol.Imprecise { oldest_store_seq }) ->
     check Alcotest.int "oldest imprecise" 4 oldest_store_seq
   | _ -> Alcotest.fail "expected imprecise priority");
  (match Protocol.priority [ Protocol.Precise { po_index = 7 };
                             Protocol.Precise { po_index = 3 } ] with
   | Some (Protocol.Precise { po_index }) ->
     check Alcotest.int "oldest precise" 3 po_index
   | _ -> Alcotest.fail "expected precise");
  check Alcotest.bool "empty" true (Protocol.priority [] = None)

let prop_protocol_routing_partitions =
  QCheck.Test.make ~name:"routing partitions and preserves order" ~count:200
    QCheck.(list bool)
    (fun flags ->
      let entries = List.mapi (fun i f -> entry i f) flags in
      let same = Protocol.route Protocol.Same_stream entries in
      let split = Protocol.route Protocol.Split_stream entries in
      let sorted l = List.sort compare l in
      let all = List.mapi (fun i _ -> i) flags in
      same.Protocol.to_fsb = all
      && sorted (split.Protocol.to_fsb @ split.Protocol.to_memory) = all
      && split.Protocol.to_fsb = List.sort compare split.Protocol.to_fsb
      && split.Protocol.to_memory = List.sort compare split.Protocol.to_memory)

(* ------------------------------------------------------------------ *)
(* Contract                                                            *)

let put c cy r = Contract.Put { core = c; cycle = cy; record = r }
let get c cy r = Contract.Get { core = c; cycle = cy; record = r }
let apply c cy r = Contract.Apply { core = c; cycle = cy; record = r }

let good_trace =
  let r0 = record 0 0 1 and r1 = record 1 8 2 in
  [ Contract.Detect { core = 0; cycle = 10 };
    put 0 11 r0; put 0 12 r1;
    get 0 20 r0; get 0 21 r1;
    apply 0 30 r0; apply 0 31 r1;
    Contract.Resolve { core = 0; cycle = 40 };
    Contract.Resume { core = 0; cycle = 41 } ]

let test_contract_good () =
  check Alcotest.bool "valid trace accepted" true
    (Stdlib.Result.is_ok (Contract.check ~ncores:1 good_trace))

let test_contract_put_order () =
  let r0 = record 5 0 1 and r1 = record 3 8 2 in
  let trace = [ put 0 1 r0; put 0 2 r1 ] in
  (match Contract.check ~ncores:1 trace with
   | Error v -> check Alcotest.string "rule" "cores-supply-in-sb-order" v.Contract.rule
   | Ok () -> Alcotest.fail "expected violation")

let test_contract_get_fifo () =
  let r0 = record 0 0 1 and r1 = record 1 8 2 in
  let trace = [ put 0 1 r0; put 0 2 r1; get 0 3 r1; get 0 4 r0 ] in
  (match Contract.check ~ncores:1 trace with
   | Error v -> check Alcotest.string "rule" "interface-fifo" v.Contract.rule
   | Ok () -> Alcotest.fail "expected violation")

let test_contract_apply_order () =
  let r0 = record 0 0 1 and r1 = record 1 8 2 in
  let trace =
    [ put 0 1 r0; put 0 2 r1; get 0 3 r0; get 0 4 r1; apply 0 5 r1 ]
  in
  (match Contract.check ~ncores:1 trace with
   | Error v ->
     check Alcotest.string "rule" "os-apply-in-interface-order" v.Contract.rule
   | Ok () -> Alcotest.fail "expected violation");
  (* the same trace is fine under WC's relaxed apply order *)
  check Alcotest.bool "unordered apply ok under WC" true
    (Stdlib.Result.is_ok
       (Contract.check ~ordered_apply:false ~ncores:1
          (trace @ [ apply 0 6 r0; Contract.Resolve { core = 0; cycle = 7 } ])))

let test_contract_resolve_before_apply_all () =
  let r0 = record 0 0 1 in
  let trace =
    [ Contract.Detect { core = 0; cycle = 0 }; put 0 1 r0; get 0 2 r0;
      Contract.Resolve { core = 0; cycle = 3 } ]
  in
  (match Contract.check ~ncores:1 trace with
   | Error v ->
     check Alcotest.string "rule" "os-apply-all-before-resolve" v.Contract.rule
   | Ok () -> Alcotest.fail "expected violation")

let test_contract_resume_before_resolve () =
  let trace =
    [ Contract.Detect { core = 0; cycle = 0 };
      Contract.Resume { core = 0; cycle = 1 } ]
  in
  (match Contract.check ~ncores:1 trace with
   | Error v -> check Alcotest.string "rule" "os-resume-after-resolve" v.Contract.rule
   | Ok () -> Alcotest.fail "expected violation")

let test_contract_per_core_independent () =
  let r0 = record ~core:0 0 0 1 and r1 = record ~core:1 0 8 2 in
  let trace = [ put 0 1 r0; put 1 1 r1; get 1 2 r1; get 0 3 r0 ] in
  check Alcotest.bool "cross-core interleaving fine" true
    (Stdlib.Result.is_ok (Contract.check ~ncores:2 trace))

(* ------------------------------------------------------------------ *)
(* Batch                                                               *)

let test_batch_unbatched_anchor () =
  (* Figure 5: handling a single faulting store costs ~600 cycles and
     the microarchitectural part is a tiny fraction *)
  let b = Batch.per_store_overhead Batch.default_cost_model ~batch_size:1 in
  let total = Batch.total b in
  check Alcotest.bool "~600 cycles" true (total > 500. && total < 700.);
  check Alcotest.bool "uarch is tiny" true (b.Batch.uarch < 0.1 *. total)

let test_batch_monotonic () =
  let m = Batch.default_cost_model in
  let t n = Batch.total (Batch.per_store_overhead m ~batch_size:n) in
  check Alcotest.bool "8 < 1" true (t 8 < t 1);
  check Alcotest.bool "32 < 8" true (t 32 < t 8)

let test_batch_speedup () =
  check Alcotest.bool "batching speeds up" true
    (Batch.speedup Batch.default_cost_model ~batch_size:16 > 2.)

let test_batch_major_io_overlap () =
  let m = Batch.default_cost_model in
  let unbatched = Batch.per_store_overhead ~major_faults:true m ~batch_size:1 in
  let batched = Batch.per_store_overhead ~major_faults:true m ~batch_size:16 in
  check Alcotest.bool "IO overlap dominates" true
    (Batch.total batched < Batch.total unbatched /. 8.)

let test_batch_invalid () =
  Alcotest.check_raises "batch 0" (Invalid_argument "Batch.per_store_overhead")
    (fun () -> ignore (Batch.per_store_overhead Batch.default_cost_model ~batch_size:0))

let prop_batch_decreasing =
  QCheck.Test.make ~name:"per-store overhead decreases with batch size" ~count:50
    QCheck.(int_range 1 31)
    (fun n ->
      let m = Batch.default_cost_model in
      Batch.total (Batch.per_store_overhead m ~batch_size:(n + 1))
      <= Batch.total (Batch.per_store_overhead m ~batch_size:n) +. 1e-9)

let suite =
  [
    ("fault severity", `Quick, test_fault_severity);
    ("x86 taxonomy (Table 1)", `Quick, test_fault_x86_taxonomy);
    ("fsb system registers", `Quick, test_fsb_sysregs);
    ("fsb FIFO", `Quick, test_fsb_fifo);
    ("fsb full", `Quick, test_fsb_full);
    ("fsb capacity and sizing", `Quick, test_fsb_capacity);
    ("fsb peek/advance", `Quick, test_fsb_peek_advance);
    ("fsb watermark", `Quick, test_fsb_watermark);
    qtest prop_fsb_order_preserving;
    ("protocol same-stream routing", `Quick, test_protocol_same_stream);
    ("protocol split-stream routing", `Quick, test_protocol_split_stream);
    ("protocol barrier requirement", `Quick, test_protocol_barrier_requirement);
    ("protocol exception priority", `Quick, test_protocol_priority);
    qtest prop_protocol_routing_partitions;
    ("contract accepts valid trace", `Quick, test_contract_good);
    ("contract put order", `Quick, test_contract_put_order);
    ("contract get fifo", `Quick, test_contract_get_fifo);
    ("contract apply order", `Quick, test_contract_apply_order);
    ("contract apply-all before resolve", `Quick, test_contract_resolve_before_apply_all);
    ("contract resume after resolve", `Quick, test_contract_resume_before_resolve);
    ("contract per-core independence", `Quick, test_contract_per_core_independent);
    ("batch unbatched anchor (~600 cycles)", `Quick, test_batch_unbatched_anchor);
    ("batch monotonic", `Quick, test_batch_monotonic);
    ("batch speedup", `Quick, test_batch_speedup);
    ("batch major IO overlap", `Quick, test_batch_major_io_overlap);
    ("batch invalid size", `Quick, test_batch_invalid);
    qtest prop_batch_decreasing;
  ]
