(* Tests for Ise_serve: codec v1/v2 reader-writer pairings, canonical
   litmus fingerprints (formatting-invariant, Table 6-distinct), the
   content-addressed result store (round-trip, persistence, corruption
   recovery, LRU front, gc), and the daemon itself — Hello discipline,
   typed error frames for malformed/oversized/wrong-version input,
   cache hit ≡ cold-run byte-identity, fingerprint invalidation,
   concurrent clients, and SIGTERM drain.  Daemon cases fork the
   server process and are skipped on platforms without [Unix.fork]. *)

module Codec = Ise_pool.Codec
module Cache = Ise_serve.Cache
module Store = Ise_serve.Store
module Proto = Ise_serve.Proto
module Server = Ise_serve.Server
module Client = Ise_serve.Client
module Lit_test = Ise_litmus.Lit_test
module Lit_run = Ise_litmus.Lit_run
open Ise_model

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tmp_dir () =
  let d = Filename.temp_file "ise-serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* ------------------------------------------------------------------ *)
(* codec: old ↔ new reader/writer pairings                             *)

let decode_str ?max_payload s =
  Codec.decode ?max_payload (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let test_codec_v1_writer_new_reader () =
  (* a frame from a v1 writer decodes in today's reader, as proto 0 *)
  let framed = Codec.encode ~version:1 "legacy payload" in
  checki "v1 header size" (Codec.header_bytes_v1 + 14) (String.length framed);
  match decode_str framed with
  | Codec.Frame { payload; proto; consumed } ->
    checks "payload" "legacy payload" payload;
    checki "proto defaults to 0" 0 proto;
    checki "consumed" (String.length framed) consumed
  | _ -> Alcotest.fail "v1 frame did not decode"

let test_codec_v2_carries_proto () =
  let framed = Codec.encode ~proto:7 "new payload" in
  checki "v2 header size" (Codec.header_bytes + 11) (String.length framed);
  match decode_str framed with
  | Codec.Frame { payload; proto; _ } ->
    checks "payload" "new payload" payload;
    checki "proto" 7 proto
  | _ -> Alcotest.fail "v2 frame did not decode"

let test_codec_v1_cannot_carry_proto () =
  match Codec.encode ~version:1 ~proto:1 "p" with
  | _ -> Alcotest.fail "v1 frame accepted a protocol byte"
  | exception Invalid_argument _ -> ()

let test_codec_future_version_rejected () =
  (* hand-craft a "v3" frame: the reader must refuse at the version
     byte, never guess at the layout *)
  let b = Bytes.of_string (Codec.encode ~proto:0 "payload") in
  Bytes.set b 4 (Char.chr 3);
  (match Codec.decode b ~pos:0 ~len:(Bytes.length b) with
   | Codec.Corrupt (Codec.Unsupported_version 3) -> ()
   | _ -> Alcotest.fail "future version not rejected");
  (* and a truncated future frame is still Unsupported_version, not
     Need_more: rejection must not wait for bytes that never come *)
  match Codec.decode b ~pos:0 ~len:6 with
  | Codec.Corrupt (Codec.Unsupported_version 3) -> ()
  | _ -> Alcotest.fail "short future frame not rejected"

let test_codec_fd_pairing () =
  (* write_frame/read_frame_ext agree for both header versions *)
  let r, w = Unix.pipe () in
  Codec.write_frame ~proto:3 w "over the wire";
  Unix.write_substring w (Codec.encode ~version:1 "old style") 0
    (String.length (Codec.encode ~version:1 "old style"))
  |> ignore;
  (match Codec.read_frame_ext r with
   | Ok (3, "over the wire") -> ()
   | _ -> Alcotest.fail "v2 fd round-trip");
  (match Codec.read_frame_ext r with
   | Ok (0, "old style") -> ()
   | _ -> Alcotest.fail "v1 fd round-trip");
  Unix.close r;
  Unix.close w

(* ------------------------------------------------------------------ *)
(* canonical fingerprints                                              *)

let mk ?(name = "t") ?(doc = "") ?(expect = []) threads cond =
  Lit_test.make ~name ~doc ~expect threads cond

let test_fingerprint_metadata_invariant () =
  let threads = [| [ Instr.Store (0, 1) ]; [ Instr.Load (0, 0) ] |] in
  let cond = [ Lit_test.Reg_is (1, 0, 1) ] in
  let a = mk ~name:"A" ~doc:"doc one" threads cond in
  let b =
    mk ~name:"B" ~doc:"entirely different"
      ~expect:[ (Axiom.Sc, Lit_test.Allowed) ]
      threads cond
  in
  checks "metadata does not change the hash" (Lit_test.fingerprint a)
    (Lit_test.fingerprint b);
  (* condition atom order is formatting, not semantics *)
  let c1 = mk threads [ Lit_test.Reg_is (1, 0, 1); Lit_test.Mem_is (0, 1) ] in
  let c2 = mk threads [ Lit_test.Mem_is (0, 1); Lit_test.Reg_is (1, 0, 1) ] in
  checks "atom order does not change the hash" (Lit_test.fingerprint c1)
    (Lit_test.fingerprint c2)

let test_fingerprint_renaming_invariant () =
  (* registers renamed per thread, locations renamed globally: r0/x,y
     vs r5/y,z spell the same program *)
  let a =
    mk
      [| [ Instr.Store (0, 1); Instr.Store (1, 1) ];
         [ Instr.Load (0, 1); Instr.Load (1, 0) ] |]
      [ Lit_test.Reg_is (1, 0, 1); Lit_test.Reg_is (1, 1, 0) ]
  in
  let b =
    mk
      [| [ Instr.Store (7, 1); Instr.Store (2, 1) ];
         [ Instr.Load (5, 2); Instr.Load (3, 7) ] |]
      [ Lit_test.Reg_is (1, 5, 1); Lit_test.Reg_is (1, 3, 0) ]
  in
  checks "renaming does not change the hash" (Lit_test.fingerprint a)
    (Lit_test.fingerprint b)

let test_fingerprint_corpus_roundtrip_stable () =
  (* serializing through the diff-friendly .lit format (and back) is a
     formatting change — the fingerprint must survive it *)
  List.iter
    (fun e ->
      let s = Ise_fuzz.Corpus.to_string e in
      match Ise_fuzz.Corpus.of_string s with
      | Error msg -> Alcotest.failf "corpus round-trip: %s" msg
      | Ok e' ->
        checks
          ("fingerprint stable through .lit: "
          ^ e.Ise_fuzz.Corpus.e_test.Lit_test.name)
          (Lit_test.fingerprint e.Ise_fuzz.Corpus.e_test)
          (Lit_test.fingerprint e'.Ise_fuzz.Corpus.e_test))
    (Ise_fuzz.Campaign.seed_entries ())

let test_fingerprint_table6_distinct () =
  (* every test of the Table 6 library hashes differently *)
  let fps =
    List.map
      (fun t -> (Lit_test.fingerprint t, t.Lit_test.name))
      Ise_litmus.Library.all
  in
  List.iteri
    (fun i (fp, name) ->
      List.iteri
        (fun j (fp', name') ->
          if i < j && fp = fp' then
            Alcotest.failf "%s and %s collide" name name')
        fps)
    fps

let test_fingerprint_semantic_change () =
  let base = [| [ Instr.Store (0, 1) ]; [ Instr.Load (0, 0) ] |] in
  let cond = [ Lit_test.Reg_is (1, 0, 1) ] in
  let fp t = Lit_test.fingerprint t in
  let orig = fp (mk base cond) in
  checkb "store value matters" false
    (fp (mk [| [ Instr.Store (0, 2) ]; [ Instr.Load (0, 0) ] |] cond) = orig);
  checkb "a fence matters" false
    (fp (mk [| [ Instr.Store (0, 1); Instr.Fence ]; [ Instr.Load (0, 0) ] |]
          cond)
     = orig);
  checkb "the condition matters" false
    (fp (mk base [ Lit_test.Reg_is (1, 0, 0) ]) = orig);
  checkb "thread order matters" false
    (fp (mk [| [ Instr.Load (0, 0) ]; [ Instr.Store (0, 1) ] |]
          [ Lit_test.Reg_is (0, 0, 1) ])
     = orig)

let default_params = { Proto.default_params with Proto.seeds = 2 }

let test_config_fingerprint_invalidates () =
  let t = List.hd Ise_litmus.Library.all in
  let key p = Proto.litmus_key t p in
  checks "same params, same key" (key default_params) (key default_params);
  checkb "seeds change the key" false
    (key default_params = key { default_params with Proto.seeds = 3 });
  checkb "model changes the key" false
    (key default_params
    = key { default_params with Proto.model = Axiom.Sc });
  checkb "fault injection changes the key" false
    (key default_params
    = key { default_params with Proto.inject_faults = false });
  let e = List.hd (Ise_fuzz.Campaign.seed_entries ()) in
  checkb "replay seeds change the key" false
    (Proto.replay_key e ~seeds:2 = Proto.replay_key e ~seeds:3)

let test_enum_epoch_invalidates () =
  (* a store populated by an engine one epoch older must miss under
     the current key — results enumerated by a superseded engine can
     not masquerade as current *)
  let t = List.hd Ise_litmus.Library.all in
  let old_key =
    Proto.litmus_key_at ~enum_epoch:(Enum.epoch - 1) t default_params
  in
  let cur_key = Proto.litmus_key t default_params in
  checkb "epoch is in the key" false (old_key = cur_key);
  checks "current epoch reproduces litmus_key"
    (Proto.litmus_key_at ~enum_epoch:Enum.epoch t default_params)
    cur_key;
  let dir = tmp_dir () in
  let s = Store.open_ ~dir () in
  Store.add s old_key "pre-bump result";
  checkb "pre-bump entry still addressable" true
    (Store.find s old_key = Some "pre-bump result");
  checkb "current key misses the pre-bump entry" true
    (Store.find s cur_key = None);
  Store.add s cur_key "post-bump result";
  checkb "post-bump hit" true (Store.find s cur_key = Some "post-bump result")

(* ------------------------------------------------------------------ *)
(* store                                                               *)

let test_cache_lru () =
  let c = Cache.create ~cap:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  ignore (Cache.find c "a");
  Cache.add c "c" 3;
  (* "b" was least recently used *)
  checkb "a survives" true (Cache.find c "a" = Some 1);
  checkb "b evicted" true (Cache.find c "b" = None);
  checkb "c present" true (Cache.find c "c" = Some 3);
  checki "one eviction" 1 (Cache.evictions c)

let test_store_roundtrip_and_persistence () =
  let dir = tmp_dir () in
  let s = Store.open_ ~dir () in
  Store.add s "k1" "payload one";
  checkb "memory hit" true (Store.find s "k1" = Some "payload one");
  (* a fresh handle on the same directory reads it back from disk *)
  let s2 = Store.open_ ~dir () in
  checkb "disk hit after reopen" true (Store.find s2 "k1" = Some "payload one");
  let c = Store.counters s2 in
  checki "disk hit counted" 1 c.Store.c_disk_hits;
  checkb "binary payloads survive" true
    (let bin = String.init 257 (fun i -> Char.chr (i land 0xff)) in
     Store.add s2 "k2" bin;
     Store.find (Store.open_ ~dir ()) "k2" = Some bin)

let corrupt_byte path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  let pos = if off >= 0 then off else n + off in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

let test_store_corrupt_entry_skipped () =
  let dir = tmp_dir () in
  let s = Store.open_ ~dir () in
  Store.add s "key" "sixteen byte load";
  (* flip the last payload byte on disk; a cold handle must treat the
     entry as a countable miss, not die *)
  corrupt_byte (Store.entry_path ~dir "key") (-1);
  let s2 = Store.open_ ~dir () in
  checkb "corrupt entry is a miss" true (Store.find s2 "key" = None);
  checki "corruption counted" 1 (Store.counters s2).Store.c_corrupt_skipped;
  (* the next add overwrites it and the store heals *)
  Store.add s2 "key" "fresh";
  checkb "healed" true (Store.find (Store.open_ ~dir ()) "key" = Some "fresh")

let test_store_torn_tail_skipped () =
  let dir = tmp_dir () in
  let s = Store.open_ ~dir () in
  Store.add s "key" "this payload will be torn";
  let path = Store.entry_path ~dir "key" in
  Unix.truncate path ((Unix.stat path).Unix.st_size - 5);
  let s2 = Store.open_ ~dir () in
  checkb "torn entry is a miss" true (Store.find s2 "key" = None);
  checki "torn tail counted" 1 (Store.counters s2).Store.c_corrupt_skipped

let test_store_lru_front () =
  let dir = tmp_dir () in
  let s = Store.open_ ~mem_entries:2 ~dir () in
  Store.add s "a" "1";
  Store.add s "b" "2";
  Store.add s "c" "3";
  let c = Store.counters s in
  checkb "memory front evicted" true (c.Store.c_mem_evictions >= 1);
  (* evicted entries are still served — from disk *)
  checkb "a" true (Store.find s "a" = Some "1");
  checkb "b" true (Store.find s "b" = Some "2");
  checkb "c" true (Store.find s "c" = Some "3")

let test_store_scan_and_gc () =
  let dir = tmp_dir () in
  let s = Store.open_ ~dir () in
  List.iteri
    (fun i k ->
      Store.add s k (String.make 10 'x');
      (* stamp distinct mtimes so gc age order is deterministic *)
      let t = Unix.gettimeofday () -. (10. *. float_of_int (4 - i)) in
      Unix.utimes (Store.entry_path ~dir k) t t)
    [ "a"; "b"; "c"; "d" ];
  corrupt_byte (Store.entry_path ~dir "b") (-1);
  let sc = Store.scan dir in
  checki "scan: valid entries" 3 sc.Store.ds_entries;
  checki "scan: corrupt entries" 1 sc.Store.ds_corrupt;
  checkb "scan: bytes counted" true (sc.Store.ds_bytes > 0);
  let g = Store.gc ~max_entries:2 dir in
  checki "gc: corrupt removed" 1 g.Store.gc_corrupt_deleted;
  checki "gc: kept the bound" 2 g.Store.gc_kept;
  checki "gc: evicted the oldest" 1 g.Store.gc_deleted;
  let s2 = Store.open_ ~dir () in
  checkb "oldest valid entry (a) gone" true (Store.find s2 "a" = None);
  checkb "newest entries survive" true
    (Store.find s2 "c" = Some (String.make 10 'x')
    && Store.find s2 "d" = Some (String.make 10 'x'))

(* ------------------------------------------------------------------ *)
(* daemon                                                              *)

let requires_fork () = Ise_pool.Pool.fork_available

(* fork a daemon on a fresh (or given) directory; the child _exits so
   alcotest's own at_exit machinery never runs twice *)
let with_daemon ?dir ?(jobs = 1) ?(cache = true) ?(max_payload = 4096 * 16) f =
  let dir = match dir with Some d -> d | None -> tmp_dir () in
  let socket = Filename.concat dir "d.sock" in
  let store_dir = if cache then Some (Filename.concat dir "store") else None in
  match Unix.fork () with
  | 0 ->
    (try
       Server.run
         {
           (Server.default_config ~socket_path:socket) with
           Server.store_dir;
           jobs;
           max_payload;
         }
     with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      (fun () -> f ~dir ~socket ~pid)

let connect_exn socket =
  match Client.connect ~retries:100 socket with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

(* a raw connection that skips the Hello exchange *)
let raw_connect socket =
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error _ when n > 0 ->
      Unix.close fd;
      ignore (Unix.select [] [] [] 0.05);
      attempt (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  attempt 100

let some_tests n =
  List.filteri (fun i _ -> i < n) Ise_litmus.Library.all

let expect_err fd kind =
  match Proto.read_response fd with
  | Ok (Proto.Error (k, _)) ->
    checks "typed error frame" (Proto.err_name kind) (Proto.err_name k)
  | Ok _ -> Alcotest.fail "expected a typed error frame"
  | Error msg -> Alcotest.failf "no error frame: %s" msg

let test_serve_hello_required () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let fd = raw_connect socket in
        Proto.write_request fd Proto.Stats_req;
        expect_err fd Proto.Bad_request;
        Unix.close fd)

let test_serve_unsupported_proto () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        match Client.connect ~proto:99 ~retries:100 socket with
        | Ok c ->
          Client.close c;
          Alcotest.fail "daemon accepted protocol v99"
        | Error msg ->
          checkb "names the version mismatch" true
            (String.length msg > 0
            && (let re = "unsupported-proto" in
                let rec find i =
                  i + String.length re <= String.length msg
                  && (String.sub msg i (String.length re) = re
                     || find (i + 1))
                in
                find 0)))

let test_serve_malformed_frame () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let fd = raw_connect socket in
        let garbage = "this is not a frame at all.............." in
        ignore (Unix.write_substring fd garbage 0 (String.length garbage));
        expect_err fd Proto.Malformed_frame;
        Unix.close fd)

let test_serve_oversized_frame () =
  if not (requires_fork ()) then ()
  else
    with_daemon ~max_payload:4096 (fun ~dir:_ ~socket ~pid:_ ->
        let fd = raw_connect socket in
        (* an honest header claiming a payload beyond the daemon's cap;
           only the header is sent, so the refusal must come from the
           claimed length, not from reading the body *)
        let header = String.sub (Codec.encode ~proto:Proto.version
                                   (String.make 8192 'x'))
                       0 Codec.header_bytes
        in
        ignore (Unix.write_substring fd header 0 (String.length header));
        expect_err fd Proto.Frame_too_large;
        Unix.close fd)

let test_serve_wrong_frame_proto () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let fd = raw_connect socket in
        (* well-formed frame, wrong application-protocol byte *)
        Codec.write_frame ~proto:(Proto.version + 1) fd
          (Codec.marshal Proto.Stats_req);
        expect_err fd Proto.Unsupported_proto;
        Unix.close fd)

let run_cold params t =
  (* the no-daemon reference: exactly what `ise litmus -j 1` prints *)
  let r =
    Lit_run.run ~seeds:params.Proto.seeds
      ~inject_faults:params.Proto.inject_faults
      ~timer_interrupts:params.Proto.timer_interrupts
      ~cfg:(Proto.cfg_of_params params) t
  in
  Lit_run.summary_line r

let litmus_exn c ~tests ~params =
  match Client.litmus c ~tests ~params with
  | Ok rs -> rs
  | Error msg -> Alcotest.failf "litmus rpc: %s" msg

let test_serve_cache_hit_byte_identity () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let tests = some_tests 3 in
        let c = connect_exn socket in
        let first = litmus_exn c ~tests ~params:default_params in
        let second = litmus_exn c ~tests ~params:default_params in
        Client.close c;
        checki "replies" 3 (List.length first);
        List.iter
          (fun (r : Proto.litmus_reply) ->
            checkb "first pass is cold" false r.Proto.r_cached)
          first;
        List.iter
          (fun (r : Proto.litmus_reply) ->
            checkb "second pass all hits" true r.Proto.r_cached)
          second;
        List.iter2
          (fun (a : Proto.litmus_reply) (b : Proto.litmus_reply) ->
            checks "hit is byte-identical to the cold response"
              a.Proto.r_line b.Proto.r_line;
            checkb "pass bit identical" true (a.Proto.r_pass = b.Proto.r_pass))
          first second;
        (* and both are byte-identical to a no-daemon run *)
        List.iter2
          (fun t (r : Proto.litmus_reply) ->
            checks "daemon line = local -j 1 line" (run_cold default_params t)
              r.Proto.r_line)
          tests second)

let test_serve_fingerprint_invalidation () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let tests = some_tests 2 in
        let c = connect_exn socket in
        ignore (litmus_exn c ~tests ~params:default_params);
        (* different run parameters → different config fingerprint →
           every lookup must miss *)
        let params' = { default_params with Proto.seeds = 3 } in
        let second = litmus_exn c ~tests ~params:params' in
        Client.close c;
        List.iter
          (fun (r : Proto.litmus_reply) ->
            checkb "changed fingerprint misses" false r.Proto.r_cached)
          second)

let test_serve_corrupt_store_recovery () =
  if not (requires_fork ()) then ()
  else begin
    let dir = tmp_dir () in
    let tests = some_tests 2 in
    (* first daemon fills the store *)
    with_daemon ~dir (fun ~dir:_ ~socket ~pid ->
        let c = connect_exn socket in
        ignore (litmus_exn c ~tests ~params:default_params);
        ignore (Client.shutdown c);
        Client.close c;
        ignore (Unix.waitpid [] pid));
    (* corrupt one entry on disk, then serve again from the same store *)
    let store_dir = Filename.concat dir "store" in
    let victim = Proto.litmus_key (List.hd tests) default_params in
    corrupt_byte (Store.entry_path ~dir:store_dir victim) (-1);
    with_daemon ~dir (fun ~dir:_ ~socket ~pid:_ ->
        let c = connect_exn socket in
        let replies = litmus_exn c ~tests ~params:default_params in
        Client.close c;
        (match replies with
         | [ a; b ] ->
           checkb "corrupt entry recomputed" false a.Proto.r_cached;
           checkb "intact entry still hits" true b.Proto.r_cached;
           List.iter2
             (fun t (r : Proto.litmus_reply) ->
               checks "recovered output byte-identical"
                 (run_cold default_params t) r.Proto.r_line)
             tests [ a; b ]
         | _ -> Alcotest.fail "expected two replies"))
  end

let test_serve_concurrent_clients () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let c1 = connect_exn socket in
        let c2 = connect_exn socket in
        let t = some_tests 1 in
        let r1 = litmus_exn c1 ~tests:t ~params:default_params in
        let s2 =
          match Client.server_stats c2 with
          | Ok s -> s
          | Error m -> Alcotest.failf "stats: %s" m
        in
        let r2 = litmus_exn c2 ~tests:t ~params:default_params in
        let r1' = litmus_exn c1 ~tests:t ~params:default_params in
        Client.close c1;
        Client.close c2;
        checkb "both clients accounted" true (s2.Proto.ss_connections >= 2);
        checkb "c2 hits c1's result" true
          (List.for_all (fun r -> r.Proto.r_cached) r2);
        checkb "c1 still served" true
          (List.for_all (fun r -> r.Proto.r_cached) r1');
        List.iter2
          (fun (a : Proto.litmus_reply) (b : Proto.litmus_reply) ->
            checks "same bytes for both clients" a.Proto.r_line b.Proto.r_line)
          r1 r2)

let test_serve_stats_counters () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let c = connect_exn socket in
        ignore (litmus_exn c ~tests:(some_tests 2) ~params:default_params);
        let s =
          match Client.server_stats c with
          | Ok s -> s
          | Error m -> Alcotest.failf "stats: %s" m
        in
        Client.close c;
        checki "cold runs counted" 2 s.Proto.ss_litmus_runs;
        checkb "requests counted" true (s.Proto.ss_requests >= 3);
        match s.Proto.ss_store with
        | None -> Alcotest.fail "store enabled but not reported"
        | Some v ->
          checki "write-through counted" 2 v.Proto.v_writes;
          checki "no corruption" 0 v.Proto.v_corrupt_skipped)

let test_serve_metrics_exposition () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let c = connect_exn socket in
        ignore (litmus_exn c ~tests:(some_tests 1) ~params:default_params);
        let text =
          match Client.metrics c with
          | Ok t -> t
          | Error m -> Alcotest.failf "metrics: %s" m
        in
        Client.close c;
        let has needle =
          let n = String.length needle and m = String.length text in
          let rec go i =
            i + n <= m && (String.sub text i n = needle || go (i + 1))
          in
          go 0
        in
        (* the documented schema: ise_-prefixed sanitized names with
           TYPE comments, counters mirroring server_stats *)
        checkb "litmus_runs counter" true
          (has "# TYPE ise_serve_litmus_runs counter"
           && has "ise_serve_litmus_runs 1");
        checkb "uptime gauge" true (has "# TYPE ise_serve_uptime_s gauge");
        checkb "store counters present" true (has "ise_serve_store_writes 1");
        String.iter
          (fun ch ->
            if ch = '/' then Alcotest.fail "unsanitized metric name")
          text)

let test_serve_replay_cached () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid:_ ->
        let entry = List.hd (Ise_fuzz.Campaign.seed_entries ()) in
        let c = connect_exn socket in
        let ask () =
          match Client.rpc c (Proto.Fuzz_replay { entry; seeds = 2 }) with
          | Ok (Proto.Replay_done { result; cached }) -> (result, cached)
          | Ok _ -> Alcotest.fail "unexpected replay response"
          | Error m -> Alcotest.failf "replay rpc: %s" m
        in
        let first = ask () in
        let second = ask () in
        Client.close c;
        (match first with
         | Ok (), false -> ()
         | _ -> Alcotest.fail "cold replay should pass uncached");
        match second with
        | Ok (), true -> ()
        | _ -> Alcotest.fail "second replay should be a cache hit")

let test_serve_sigterm_drains () =
  if not (requires_fork ()) then ()
  else
    with_daemon (fun ~dir:_ ~socket ~pid ->
        let c = connect_exn socket in
        ignore (litmus_exn c ~tests:(some_tests 1) ~params:default_params);
        Client.close c;
        Unix.kill pid Sys.sigterm;
        (match Unix.waitpid [] pid with
         | _, Unix.WEXITED 0 -> ()
         | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
         | _ -> Alcotest.fail "daemon did not exit cleanly");
        checkb "socket file removed on drain" false (Sys.file_exists socket))

let test_serve_pool_fanout_identity () =
  (* a daemon fanning misses out over forked pool workers returns the
     same bytes as the in-process daemon path *)
  if not (requires_fork ()) then ()
  else begin
    let tests = some_tests 4 in
    let lines jobs =
      with_daemon ~jobs (fun ~dir:_ ~socket ~pid:_ ->
          let c = connect_exn socket in
          let rs = litmus_exn c ~tests ~params:default_params in
          Client.close c;
          List.map (fun r -> r.Proto.r_line) rs)
    in
    List.iter2 (checks "jobs=3 = jobs=1") (lines 1) (lines 3)
  end

let suite =
  [
    Alcotest.test_case "codec: v1 writer, new reader" `Quick
      test_codec_v1_writer_new_reader;
    Alcotest.test_case "codec: v2 carries proto byte" `Quick
      test_codec_v2_carries_proto;
    Alcotest.test_case "codec: v1 cannot carry proto" `Quick
      test_codec_v1_cannot_carry_proto;
    Alcotest.test_case "codec: future version rejected" `Quick
      test_codec_future_version_rejected;
    Alcotest.test_case "codec: fd helpers pair across versions" `Quick
      test_codec_fd_pairing;
    Alcotest.test_case "fingerprint: metadata-invariant" `Quick
      test_fingerprint_metadata_invariant;
    Alcotest.test_case "fingerprint: renaming-invariant" `Quick
      test_fingerprint_renaming_invariant;
    Alcotest.test_case "fingerprint: stable through .lit round-trip" `Quick
      test_fingerprint_corpus_roundtrip_stable;
    Alcotest.test_case "fingerprint: Table 6 corpus distinct" `Quick
      test_fingerprint_table6_distinct;
    Alcotest.test_case "fingerprint: semantic changes alter it" `Quick
      test_fingerprint_semantic_change;
    Alcotest.test_case "keys: config fingerprint invalidates" `Quick
      test_config_fingerprint_invalidates;
    Alcotest.test_case "keys: engine epoch bump invalidates" `Quick
      test_enum_epoch_invalidates;
    Alcotest.test_case "cache: LRU eviction order" `Quick test_cache_lru;
    Alcotest.test_case "store: round-trip and persistence" `Quick
      test_store_roundtrip_and_persistence;
    Alcotest.test_case "store: corrupt entry skipped and healed" `Quick
      test_store_corrupt_entry_skipped;
    Alcotest.test_case "store: torn tail skipped" `Quick
      test_store_torn_tail_skipped;
    Alcotest.test_case "store: LRU front falls back to disk" `Quick
      test_store_lru_front;
    Alcotest.test_case "store: scan and gc bounds" `Quick
      test_store_scan_and_gc;
    Alcotest.test_case "serve: hello required first" `Quick
      test_serve_hello_required;
    Alcotest.test_case "serve: unsupported hello proto refused" `Quick
      test_serve_unsupported_proto;
    Alcotest.test_case "serve: malformed frame → typed error" `Quick
      test_serve_malformed_frame;
    Alcotest.test_case "serve: oversized frame → typed error" `Quick
      test_serve_oversized_frame;
    Alcotest.test_case "serve: wrong frame proto → typed error" `Quick
      test_serve_wrong_frame_proto;
    Alcotest.test_case "serve: cache hit ≡ cold run bytes" `Quick
      test_serve_cache_hit_byte_identity;
    Alcotest.test_case "serve: fingerprint change invalidates" `Quick
      test_serve_fingerprint_invalidation;
    Alcotest.test_case "serve: corrupt store entry recovered" `Quick
      test_serve_corrupt_store_recovery;
    Alcotest.test_case "serve: concurrent clients" `Quick
      test_serve_concurrent_clients;
    Alcotest.test_case "serve: lifetime counters" `Quick
      test_serve_stats_counters;
    Alcotest.test_case "serve: fuzz replay cached" `Quick
      test_serve_replay_cached;
    Alcotest.test_case "serve: prometheus metrics exposition" `Quick
      test_serve_metrics_exposition;
    Alcotest.test_case "serve: SIGTERM drains cleanly" `Quick
      test_serve_sigterm_drains;
    Alcotest.test_case "serve: pool fan-out byte-identity" `Quick
      test_serve_pool_fanout_identity;
  ]
