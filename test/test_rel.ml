(* Differential suite for the bitset Rel against the seed dense-matrix
   Rel_ref: every operation, on random relations at sizes that straddle
   the word boundary (0, 1, 64, 65 — [Sys.int_size] is 63 on 64-bit
   OCaml, so 64/65 exercise multi-word rows).  The two modules share a
   signature; properties build the same relation in both and demand
   identical observable behaviour.  cycle_witness is the one
   deliberately looser contract: any valid cycle is acceptable, so it
   is checked for validity against the relation, plus Some/None
   agreement. *)

module Rel = Ise_model.Rel
module Rel_ref = Ise_model.Rel_ref
module Pbt = Ise_fuzz.Pbt

let checkb = Alcotest.(check bool)

let edges_gen n =
  if n = 0 then Pbt.return []
  else
    Pbt.list_of ~max:(min 80 (2 * n * n))
      (Pbt.pair (Pbt.int_range 0 (n - 1)) (Pbt.int_range 0 (n - 1)))

let pp_edges fmt (n, es) =
  Format.fprintf fmt "n=%d [%s]" n
    (String.concat "; "
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es))

let arb n =
  Pbt.make ~pp:pp_edges
    ~shrink:(fun (n, es) ->
      Seq.map (fun es -> (n, es)) (Pbt.shrink_list es))
    (Pbt.map (fun es -> (n, es)) (edges_gen n))

(* both builds of the same edge list *)
let build (n, es) = (Rel.of_list n es, Rel_ref.of_list n es)

let same_list what a b =
  if Rel.to_list a <> Rel_ref.to_list b then
    failwith (what ^ ": edge lists differ")

let valid_cycle n mem = function
  | None -> true
  | Some [] | Some [ _ ] -> false
  | Some (first :: _ as cyc) ->
    let rec ok = function
      | [ last ] -> last = first
      | a :: (b :: _ as rest) ->
        a >= 0 && a < n && mem a b && ok rest
      | [] -> false
    in
    ok cyc

let prop_agree (n, es) =
  let a, b = build (n, es) in
  same_list "of_list" a b;
  (* point queries over the full square *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Rel.mem a i j <> Rel_ref.mem b i j then failwith "mem"
    done
  done;
  if Rel.cardinal a <> Rel_ref.cardinal b then failwith "cardinal";
  if Rel.size a <> Rel_ref.size b then failwith "size";
  (* unary operations *)
  same_list "inverse" (Rel.inverse a) (Rel_ref.inverse b);
  same_list "closure" (Rel.transitive_closure a) (Rel_ref.transitive_closure b);
  same_list "filter"
    (Rel.filter (fun i j -> (i + j) mod 2 = 0) a)
    (Rel_ref.filter (fun i j -> (i + j) mod 2 = 0) b);
  same_list "copy" (Rel.copy a) (Rel_ref.copy b);
  (* iteration order is part of the contract (enumerator determinism) *)
  let trace rel_iter r =
    let acc = ref [] in
    rel_iter (fun i j -> acc := (i, j) :: !acc) r;
    List.rev !acc
  in
  if trace Rel.iter a <> trace Rel_ref.iter b then failwith "iter order";
  (* verdicts *)
  if Rel.is_acyclic a <> Rel_ref.is_acyclic b then failwith "is_acyclic";
  if Rel.topological_order a <> Rel_ref.topological_order b then
    failwith "topological_order";
  (* witnesses: agreement on existence, validity of each *)
  let wa = Rel.cycle_witness a and wb = Rel_ref.cycle_witness b in
  if (wa = None) <> (wb = None) then failwith "cycle_witness existence";
  if (wa = None) <> Rel.is_acyclic a then failwith "witness iff cyclic";
  if not (valid_cycle n (Rel.mem a) wa) then failwith "fast witness invalid";
  if not (valid_cycle n (Rel_ref.mem b) wb) then
    failwith "reference witness invalid";
  true

let prop_binary (n, (es1, es2)) =
  let a1 = Rel.of_list n es1 and b1 = Rel_ref.of_list n es1 in
  let a2 = Rel.of_list n es2 and b2 = Rel_ref.of_list n es2 in
  same_list "union" (Rel.union a1 a2) (Rel_ref.union b1 b2);
  same_list "inter" (Rel.inter a1 a2) (Rel_ref.inter b1 b2);
  same_list "diff" (Rel.diff a1 a2) (Rel_ref.diff b1 b2);
  same_list "compose" (Rel.compose a1 a2) (Rel_ref.compose b1 b2);
  if Rel.equal a1 a2 <> Rel_ref.equal b1 b2 then failwith "equal";
  (* add mutates only the receiver: a fresh copy diverges, the
     original is untouched (no row aliasing between copies) *)
  if n > 0 then begin
    let c = Rel.copy a1 in
    let i = n / 2 and j = n - 1 in
    if not (Rel.mem c i j) then begin
      Rel.add c i j;
      if Rel.mem a1 i j then failwith "copy aliases rows";
      if not (Rel.mem c i j) then failwith "add lost"
    end
  end;
  true

let arb2 n =
  Pbt.make
    ~pp:(fun fmt (n, (e1, e2)) ->
      Format.fprintf fmt "%a / %a" pp_edges (n, e1) pp_edges (n, e2))
    ~shrink:(fun (n, (e1, e2)) ->
      Seq.map
        (fun (e1, e2) -> (n, (e1, e2)))
        (Pbt.shrink_pair Pbt.shrink_list Pbt.shrink_list (e1, e2)))
    (Pbt.map (fun p -> (n, p)) (Pbt.pair (edges_gen n) (edges_gen n)))

(* sizes straddling the packing boundary; counts kept small at the big
   sizes — the reference closure is O(n^3) per case *)
let sizes = [ (0, 50); (1, 100); (5, 200); (64, 40); (65, 40) ]

let test_unary () =
  List.iter
    (fun (n, count) ->
      Pbt.check ~count ~seed:(0xABC + n)
        ~name:(Printf.sprintf "rel unary n=%d" n)
        (arb n) prop_agree)
    sizes

let test_binary () =
  List.iter
    (fun (n, count) ->
      Pbt.check ~count ~seed:(0xDEF + n)
        ~name:(Printf.sprintf "rel binary n=%d" n)
        (arb2 n) prop_binary)
    sizes

let test_mismatch_guard () =
  (* binary operations refuse mismatched sizes, as the seed did *)
  let a = Rel.create 3 and b = Rel.create 4 in
  checkb "union size mismatch" true
    (match Rel.union a b with
     | _ -> false
     | exception Invalid_argument _ -> true);
  checkb "out of range add" true
    (match Rel.add a 3 0 with
     | _ -> false
     | exception Invalid_argument _ -> true);
  checkb "out of range mem" true
    (match Rel.mem a 0 (-1) with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_known_answers () =
  (* tiny pinned cases so a simultaneous bug in both engines cannot
     hide behind the differential check *)
  let r = Rel.of_list 3 [ (0, 1); (1, 2) ] in
  checkb "acyclic chain" true (Rel.is_acyclic r);
  checkb "closure adds (0,2)" true
    (Rel.to_list (Rel.transitive_closure r) = [ (0, 1); (0, 2); (1, 2) ]);
  checkb "topo 0<1<2" true (Rel.topological_order r = Some [ 0; 1; 2 ]);
  let c = Rel.of_list 2 [ (0, 1); (1, 0) ] in
  checkb "2-cycle detected" false (Rel.is_acyclic c);
  checkb "2-cycle witness" true
    (match Rel.cycle_witness c with
     | Some w -> List.length w >= 3
     | None -> false);
  let self = Rel.of_list 1 [ (0, 0) ] in
  checkb "self loop cyclic" false (Rel.is_acyclic self);
  checkb "empty acyclic" true (Rel.is_acyclic (Rel.create 0));
  checkb "empty topo" true (Rel.topological_order (Rel.create 0) = Some [])

let suite =
  [
    Alcotest.test_case "known answers (pinned)" `Quick test_known_answers;
    Alcotest.test_case "differential: unary ops" `Quick test_unary;
    Alcotest.test_case "differential: binary ops" `Quick test_binary;
    Alcotest.test_case "size/range guards" `Quick test_mismatch_guard;
  ]
