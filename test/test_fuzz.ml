(* Tests for the differential fuzzing harness: the PBT core itself,
   property tests of Ise_util written with that core, the litmus
   shrinker, the corpus format, and campaign end-to-end behaviour
   (including finding, shrinking, and replaying an injected model
   bug). *)

open Ise_fuzz
module Rng = Ise_util.Rng
module Instr = Ise_model.Instr
module Lit_test = Ise_litmus.Lit_test

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* PBT core *)

let ints = Pbt.make ~shrink:Pbt.shrink_int ~pp:Format.pp_print_int
    (Pbt.int_range 0 1000)

let test_pbt_finds_and_shrinks () =
  match Pbt.run ~count:200 ~seed:11 ints (fun n -> n < 50) with
  | Pbt.Passed _ -> Alcotest.fail "property n < 50 should fail on 0..1000"
  | Pbt.Failed f ->
    checkb "generated case fails" false (f.Pbt.fail_case < 50);
    checki "shrunk to boundary" 50 f.Pbt.fail_shrunk;
    check (Alcotest.option Alcotest.string) "no exception" None f.Pbt.fail_error

let test_pbt_deterministic () =
  let once () =
    match Pbt.run ~count:200 ~seed:13 ints (fun n -> n mod 7 <> 3) with
    | Pbt.Passed _ -> Alcotest.fail "n mod 7 <> 3 should fail"
    | Pbt.Failed f -> (f.Pbt.fail_index, f.Pbt.fail_case, f.Pbt.fail_shrunk)
  in
  let i1, c1, s1 = once () and i2, c2, s2 = once () in
  checki "same failing index" i1 i2;
  checki "same failing case" c1 c2;
  checki "same shrunk case" s1 s2;
  (* greedy shrinking only promises a local minimum that still fails *)
  checki "shrunk still fails" 3 (s1 mod 7);
  checkb "shrunk no larger than the case" true (s1 <= c1)

let test_pbt_exception_is_failure () =
  match
    Pbt.run ~count:200 ~seed:17 ints (fun n ->
        if n > 100 then failwith "boom" else true)
  with
  | Pbt.Passed _ -> Alcotest.fail "raising property should fail"
  | Pbt.Failed f ->
    checkb "error recorded"
      true
      (match f.Pbt.fail_error with
      | Some m -> contains_substring m "boom"
      | None -> false);
    checki "shrunk to boundary" 101 f.Pbt.fail_shrunk

let test_pbt_minimize_idempotent () =
  let still_fails n = n >= 50 in
  let m, steps = Pbt.minimize Pbt.shrink_int still_fails 700 in
  checki "minimum" 50 m;
  checkb "made progress" true (steps > 0);
  let m', steps' = Pbt.minimize Pbt.shrink_int still_fails m in
  checki "re-minimizing is a no-op" m m';
  checki "zero steps on a minimum" 0 steps'

let test_pbt_list_shrink () =
  let lists =
    Pbt.make
      ~shrink:(Pbt.shrink_list ~elt:Pbt.shrink_int)
      ~pp:(fun ppf l ->
        Format.fprintf ppf "[%s]"
          (String.concat "; " (List.map string_of_int l)))
      (Pbt.list_of ~max:8 (Pbt.int_range 0 20))
  in
  match Pbt.run ~count:300 ~seed:19 lists (List.for_all (fun n -> n <= 10)) with
  | Pbt.Passed _ -> Alcotest.fail "lists with an element > 10 exist"
  | Pbt.Failed f ->
    check Alcotest.(list int) "shrunk to the single smallest witness"
      [ 11 ] f.Pbt.fail_shrunk

let test_pbt_bad_params () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty oneof" (Invalid_argument "Pbt.oneof: empty list")
    (fun () -> ignore (Pbt.oneof [] rng));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Pbt.choose: empty list") (fun () ->
      ignore (Pbt.choose [] rng));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Pbt.int_range: empty range") (fun () ->
      ignore (Pbt.int_range 5 3 rng))

(* ------------------------------------------------------------------ *)
(* Ise_util properties, written with the new core *)

module RB = Ise_util.Ring_buffer
module PQ = Ise_util.Pqueue
module BS = Ise_util.Bitset
module Stats = Ise_util.Stats

type rop = RPush of int | RPop | RPeek | RClear

let ring_ops =
  Pbt.list_of ~max:40
    (Pbt.frequency
       [ (5, Pbt.map (fun v -> RPush v) (Pbt.int_range 0 99));
         (3, Pbt.return RPop);
         (1, Pbt.return RPeek);
         (1, Pbt.return RClear) ])

(* Ring_buffer against the obvious list model, including the
   raise-on-full / raise-on-empty contract. *)
let ring_buffer_agrees ops =
  let rb = RB.create ~capacity:4 in
  let model = ref [] in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | RPush v ->
        if List.length !model < 4 then begin
          RB.push rb v;
          model := !model @ [ v ]
        end
        else begin
          match RB.push rb v with
          | () -> ok := false
          | exception Failure _ -> ()
        end
      | RPop -> begin
          match (RB.pop rb, !model) with
          | v, m :: rest ->
            if v <> m then ok := false else model := rest
          | _, [] -> ok := false
          | exception Failure _ -> if !model <> [] then ok := false
        end
      | RPeek ->
        let expected = match !model with [] -> None | m :: _ -> Some m in
        if RB.peek rb <> expected then ok := false
      | RClear ->
        RB.clear rb;
        model := [])
    ops;
  !ok && RB.to_list rb = !model && RB.length rb = List.length !model
  && RB.is_empty rb = (!model = [])

let test_ring_buffer_model () =
  Pbt.check ~count:300 ~seed:23 ~name:"ring buffer = list model"
    (Pbt.make ring_ops) ring_buffer_agrees

let test_pqueue_ordering () =
  let prios = Pbt.list_of ~min:1 ~max:30 (Pbt.int_range 0 9) in
  Pbt.check ~count:300 ~seed:29 ~name:"pqueue pops = stable sort"
    (Pbt.make prios) (fun prios ->
      let q = PQ.create () in
      List.iteri (fun idx p -> PQ.push q p idx) prios;
      let popped = ref [] in
      let rec drain () =
        match PQ.pop q with
        | Some pv ->
          popped := pv :: !popped;
          drain ()
        | None -> ()
      in
      drain ();
      let expected =
        List.stable_sort
          (fun (p1, _) (p2, _) -> compare p1 p2)
          (List.mapi (fun idx p -> (p, idx)) prios)
      in
      List.rev !popped = expected && PQ.is_empty q)

type bop = BSet of int | BClr of int

let test_bitset_model () =
  let n = 16 in
  let ops =
    Pbt.list_of ~max:60
      (Pbt.oneof
         [ Pbt.map (fun i -> BSet i) (Pbt.int_range 0 (n - 1));
           Pbt.map (fun i -> BClr i) (Pbt.int_range 0 (n - 1)) ])
  in
  Pbt.check ~count:300 ~seed:31 ~name:"bitset = bool array"
    (Pbt.make ops) (fun ops ->
      let bs = BS.create n in
      let model = Array.make n false in
      List.iter
        (fun op ->
          match op with
          | BSet i ->
            BS.set bs i;
            model.(i) <- true
          | BClr i ->
            BS.clear bs i;
            model.(i) <- false)
        ops;
      let members = List.filter (fun i -> model.(i)) (List.init n Fun.id) in
      BS.to_list bs = members
      && BS.cardinal bs = List.length members
      && List.for_all (fun i -> BS.mem bs i = model.(i)) (List.init n Fun.id))

let test_stats_percentile_monotone () =
  let samples = Pbt.list_of ~min:1 ~max:50 (Pbt.int_range (-100) 100) in
  let queries = Pbt.pair (Pbt.int_range 0 100) (Pbt.int_range 0 100) in
  Pbt.check ~count:300 ~seed:37 ~name:"percentile is monotone in p"
    (Pbt.make (Pbt.pair samples queries))
    (fun (samples, (q1, q2)) ->
      let s = Stats.create () in
      List.iter (Stats.add_int s) samples;
      let lo = float_of_int (min q1 q2) and hi = float_of_int (max q1 q2) in
      let p_lo = Stats.percentile s lo and p_hi = Stats.percentile s hi in
      p_lo <= p_hi
      && Stats.min_value s <= Stats.percentile s 0.
      && Stats.percentile s 100. <= Stats.max_value s)

(* ------------------------------------------------------------------ *)
(* Generator parameter validation *)

let test_gen_validate () =
  let module Gen = Ise_litmus.Gen in
  let p = Gen.default_params in
  let expect_error field p =
    match Gen.validate p with
    | Error msg ->
      checkb (Printf.sprintf "error names %s" field) true
        (contains_substring msg field)
    | Ok () -> Alcotest.failf "expected %s to be rejected" field
  in
  expect_error "max_threads" { p with Gen.max_threads = 1 };
  expect_error "max_threads" { p with Gen.max_threads = 9 };
  expect_error "max_instrs" { p with Gen.max_instrs = 0 };
  expect_error "max_instrs" { p with Gen.max_instrs = 17 };
  expect_error "max_locs" { p with Gen.max_locs = 0 };
  expect_error "max_locs" { p with Gen.max_locs = 9 };
  checkb "defaults validate" true (Gen.validate p = Ok ());
  (match Gen.generate (Rng.create 1) { p with Gen.max_threads = 1 } with
  | _ -> Alcotest.fail "generate must reject invalid params"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Litmus shrinker *)

let total_instrs (t : Lit_test.t) =
  Array.fold_left (fun a is -> a + List.length is) 0 t.Lit_test.threads

let has_fence (t : Lit_test.t) =
  Array.exists (List.exists (fun i -> i = Instr.Fence)) t.Lit_test.threads

let test_shrink_candidates_decrease () =
  let tests =
    Ise_litmus.Gen.generate_suite ~seed:5 ~count:15
      Ise_litmus.Gen.default_params
  in
  List.iter
    (fun t ->
      let s = Shrink.size t in
      Seq.iter
        (fun c ->
          if Shrink.size c >= s then
            Alcotest.failf "candidate of %s does not shrink: %d >= %d"
              t.Lit_test.name (Shrink.size c) s)
        (Shrink.candidates t))
    tests

let test_shrink_preserves_and_terminates () =
  (* structural property: "the test contains a fence" — minimization
     must keep it failing and land on the 1-thread 1-instruction
     minimum *)
  let t =
    Lit_test.make ~name:"shrink-meta"
      [| [ Instr.Store (0, 1); Instr.Fence; Instr.Load (0, 1) ];
         [ Instr.Store (1, 2); Instr.Load (1, 0); Instr.Fence ] |]
      []
  in
  checkb "input fails" true (has_fence t);
  let shrunk, steps = Shrink.minimize ~keeps_failing:has_fence t in
  checkb "failure preserved" true (has_fence shrunk);
  checkb "made progress" true (steps > 0);
  checki "one thread" 1 (Array.length shrunk.Lit_test.threads);
  checki "one instruction" 1 (total_instrs shrunk);
  check Alcotest.string "name preserved" t.Lit_test.name shrunk.Lit_test.name;
  let again, steps' = Shrink.minimize ~keeps_failing:has_fence shrunk in
  checki "idempotent: zero further steps" 0 steps';
  checki "idempotent: same size" (Shrink.size shrunk) (Shrink.size again)

let test_shrink_keeps_cond_locations () =
  (* tests with a condition must never have locations merged away *)
  let t =
    Lit_test.make ~name:"cond-locs"
      [| [ Instr.Store (0, 1); Instr.Load (0, 1) ];
         [ Instr.Store (1, 1) ] |]
      [ Lit_test.Mem_is (1, 1) ]
  in
  (* merge_locs proposes nothing when a condition is present: every
     candidate must come from drops/simplifications only, so location 1
     of the condition is never renamed *)
  checkb "no candidate renames locations" true
    (Seq.for_all
       (fun (c : Lit_test.t) ->
         Array.for_all
           (List.for_all (fun i ->
                match Instr.loc_of i with Some l -> l <= 1 | None -> true))
           c.Lit_test.threads)
       (Shrink.candidates t))

(* ------------------------------------------------------------------ *)
(* Corpus format *)

let entry_equal (a : Corpus.entry) (b : Corpus.entry) =
  a.Corpus.e_seed = b.Corpus.e_seed
  && a.Corpus.e_variant = b.Corpus.e_variant
  && a.Corpus.e_kind = b.Corpus.e_kind
  && a.Corpus.e_detail = b.Corpus.e_detail
  && a.Corpus.e_expect = b.Corpus.e_expect
  && a.Corpus.e_test.Lit_test.name = b.Corpus.e_test.Lit_test.name
  && a.Corpus.e_test.Lit_test.threads = b.Corpus.e_test.Lit_test.threads
  && a.Corpus.e_test.Lit_test.cond = b.Corpus.e_test.Lit_test.cond

let test_corpus_roundtrip () =
  let entries = Campaign.seed_entries () in
  checkb "seed corpus is non-empty" true (entries <> []);
  List.iter
    (fun e ->
      match Corpus.of_string (Corpus.to_string e) with
      | Ok e' ->
        checkb
          (Printf.sprintf "%s round-trips" e.Corpus.e_test.Lit_test.name)
          true (entry_equal e e')
      | Error msg ->
        Alcotest.failf "%s failed to parse back: %s"
          e.Corpus.e_test.Lit_test.name msg)
    entries

let test_corpus_rejects_garbage () =
  let is_error = function Error _ -> true | Ok _ -> false in
  checkb "bad header" true (is_error (Corpus.of_string "not-a-corpus\n"));
  checkb "empty" true (is_error (Corpus.of_string ""));
  checkb "bad instruction" true
    (is_error
       (Corpus.of_string
          "ise-fuzz v1\nname t\nseed 1\nvariant wc+same+faults\nkind \
           seed\nexpect pass\nthread Q x 1\n"));
  checkb "bad expect" true
    (is_error
       (Corpus.of_string
          "ise-fuzz v1\nname t\nseed 1\nvariant wc+same+faults\nkind \
           seed\nexpect maybe\nthread W x 1\n"))

(* the checked-in corpus, relative to _build/default/test *)
let corpus_dir () =
  let candidates =
    [ "../../../corpus"; "../../corpus"; "../corpus"; "corpus" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "corpus/ directory not found from test cwd"

let test_corpus_replays_green () =
  let entries = Corpus.load_dir (corpus_dir ()) in
  checkb "checked-in corpus is non-empty" true (entries <> []);
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error msg -> Alcotest.failf "%s does not parse: %s" path msg
      | Ok entry -> begin
          match Campaign.replay entry with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s does not replay: %s" path msg
        end)
    entries

(* ------------------------------------------------------------------ *)
(* Campaign *)

let test_variant_names_roundtrip () =
  let names = List.map Campaign.variant_name Campaign.all_variants in
  checki "names are unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun v ->
      match Campaign.variant_named (Campaign.variant_name v) with
      | Some v' ->
        checkb (Campaign.variant_name v) true (v = v')
      | None ->
        Alcotest.failf "variant %s does not parse back"
          (Campaign.variant_name v))
    Campaign.all_variants;
  List.iter
    (fun k ->
      checkb (Campaign.kind_name k) true
        (Campaign.kind_named (Campaign.kind_name k) = Some k))
    [ Campaign.Differential; Campaign.Contract; Campaign.Model_mono;
      Campaign.Same_stream_equiv; Campaign.Split_subset ]

let test_campaign_clean_is_sound () =
  (* a bounded sweep over the lattice must find nothing on the sound
     model: the harness itself must not produce false positives *)
  let report =
    Campaign.run ~count:8 ~seeds_per_test:5 ~seed:3 ()
  in
  checki "tests run" 8 report.Campaign.r_tests;
  checkb "checks executed" true (report.Campaign.r_checks >= 8);
  checki "no false positives" 0 (List.length report.Campaign.r_failures)

let test_campaign_telemetry () =
  let sink = Ise_telemetry.Sink.create () in
  let _report =
    Campaign.run ~telemetry:sink ~count:3 ~seeds_per_test:3 ~seed:1 ()
  in
  let snap = Ise_telemetry.Registry.snapshot (Ise_telemetry.Sink.registry sink) in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Ise_telemetry.Registry.Snap_counter n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  checki "fuzz/tests counter" 3 (counter "fuzz/tests");
  checkb "fuzz/checks counter" true (counter "fuzz/checks" >= 3);
  checki "fuzz/failures counter" 0 (counter "fuzz/failures")

let test_campaign_validates_params () =
  let bad = { Ise_litmus.Gen.default_params with Ise_litmus.Gen.max_threads = 1 } in
  (match Campaign.run ~params:bad ~count:1 ~seed:1 () with
  | _ -> Alcotest.fail "invalid generator params must be rejected"
  | exception Invalid_argument _ -> ());
  match Campaign.run ~variants:[] ~count:1 ~seed:1 () with
  | _ -> Alcotest.fail "empty variant list must be rejected"
  | exception Invalid_argument _ -> ()

let with_injected_bug f =
  Ise_model.Axiom.fuzz_unsound_strict_ppo := true;
  Fun.protect
    ~finally:(fun () -> Ise_model.Axiom.fuzz_unsound_strict_ppo := false)
    f

(* the headline acceptance criterion: an injected model bug (ppo kept
   artificially strict, so the oracle wrongly forbids store-buffer
   relaxation) is found by the campaign, shrunk to a ≤2-thread
   ≤4-instruction witness, and the saved artifact replays *)
let test_campaign_finds_injected_bug () =
  let variant =
    match Campaign.variant_named "wc+same+nofaults" with
    | Some v -> v
    | None -> Alcotest.fail "variant wc+same+nofaults missing"
  in
  let entry =
    with_injected_bug (fun () ->
        let report =
          Campaign.run ~count:25 ~seeds_per_test:20 ~variants:[ variant ]
            ~seed:7 ()
        in
        checkb "injected bug found" true (report.Campaign.r_failures <> []);
        let f = List.hd report.Campaign.r_failures in
        checkb "differential failure" true
          (f.Campaign.f_kind = Campaign.Differential);
        checkb "shrunk to <= 2 threads" true
          (Array.length f.Campaign.f_shrunk.Lit_test.threads <= 2);
        checkb "shrunk to <= 4 instructions" true
          (total_instrs f.Campaign.f_shrunk <= 4);
        checkb "shrinking made progress" true
          (Shrink.size f.Campaign.f_shrunk <= Shrink.size f.Campaign.f_test);
        let entry = Campaign.entry_of_failure ~seed:7 f in
        (* the artifact replays (still under the bug): Must_fail matches *)
        (match Campaign.replay ~seeds:20 entry with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "artifact does not replay: %s" msg);
        (* and survives the on-disk format *)
        match Corpus.of_string (Corpus.to_string entry) with
        | Ok e -> e
        | Error msg -> Alcotest.failf "artifact does not round-trip: %s" msg)
  in
  (* with the sound model restored, the Must_fail artifact no longer
     fails — exactly the signal to flip it to Must_pass after a fix *)
  match Campaign.replay ~seeds:20 entry with
  | Ok () -> Alcotest.fail "artifact must not reproduce on the sound model"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "pbt: finds and shrinks" `Quick test_pbt_finds_and_shrinks;
    Alcotest.test_case "pbt: deterministic in seed" `Quick test_pbt_deterministic;
    Alcotest.test_case "pbt: exception is a failure" `Quick
      test_pbt_exception_is_failure;
    Alcotest.test_case "pbt: minimize is idempotent" `Quick
      test_pbt_minimize_idempotent;
    Alcotest.test_case "pbt: list shrinking" `Quick test_pbt_list_shrink;
    Alcotest.test_case "pbt: rejects bad combinator args" `Quick
      test_pbt_bad_params;
    Alcotest.test_case "util: ring buffer vs list model" `Quick
      test_ring_buffer_model;
    Alcotest.test_case "util: pqueue ordering" `Quick test_pqueue_ordering;
    Alcotest.test_case "util: bitset vs bool array" `Quick test_bitset_model;
    Alcotest.test_case "util: percentile monotone" `Quick
      test_stats_percentile_monotone;
    Alcotest.test_case "gen: parameter validation" `Quick test_gen_validate;
    Alcotest.test_case "shrink: candidates strictly decrease" `Quick
      test_shrink_candidates_decrease;
    Alcotest.test_case "shrink: preserves failure, terminates, idempotent"
      `Quick test_shrink_preserves_and_terminates;
    Alcotest.test_case "shrink: conditions pin locations" `Quick
      test_shrink_keeps_cond_locations;
    Alcotest.test_case "corpus: round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus: rejects malformed input" `Quick
      test_corpus_rejects_garbage;
    Alcotest.test_case "corpus: checked-in entries replay green" `Slow
      test_corpus_replays_green;
    Alcotest.test_case "campaign: variant/kind names round-trip" `Quick
      test_variant_names_roundtrip;
    Alcotest.test_case "campaign: clean run is sound" `Slow
      test_campaign_clean_is_sound;
    Alcotest.test_case "campaign: telemetry counters" `Quick
      test_campaign_telemetry;
    Alcotest.test_case "campaign: validates parameters" `Quick
      test_campaign_validates_params;
    Alcotest.test_case "campaign: finds, shrinks, replays injected bug" `Slow
      test_campaign_finds_injected_bug;
  ]
