(* Midgard-style late address translation (paper §2.2, Example 2).

   The cache hierarchy is indexed by the intermediate (Midgard)
   address space: the cheap VMA-level check happens at the core, and
   the page-based Midgard→physical translation runs only when the LLC
   misses.  A store can therefore retire, miss, and *then* take a page
   fault — an imprecise store exception that the OS resolves by
   establishing the mapping and applying the store.

   Run with: dune exec examples/midgard.exe *)

open Ise_sim

let () =
  let vma_base = 0x1000_0000 in
  let pages = 16 in
  let midgard = Midgard.create ~walk_latency:24 () in
  Midgard.add_vma midgard ~base:vma_base ~bytes:(pages * 4096);

  (* A program touching one word per page of the (demand-backed) VMA:
     every first touch misses the LLC, walks, and faults. *)
  let program =
    List.concat
      (List.init pages (fun i ->
           let a = vma_base + (i * 4096) in
           [ Sim_instr.St { addr = Sim_instr.addr a; data = Sim_instr.Imm (i * 11) };
             Sim_instr.Nop 2;
             Sim_instr.Ld { dst = i mod 32; addr = Sim_instr.addr (a + 8) } ]))
  in
  let machine = Machine.create ~programs:[| Sim_instr.of_list program |] () in
  Memsys.add_interceptor (Machine.mem machine) (Midgard.interceptor midgard);
  let config =
    { Ise_os.Handler.costs = Ise_core.Batch.default_cost_model;
      policy =
        Ise_os.Handler.Midgard_paging
          { midgard; major_pct = 25; io_latency = 20_000 } }
  in
  let os = Ise_os.Handler.install ~config machine in
  Machine.run machine;

  Printf.printf "VMA: %d demand-backed pages at 0x%x\n" pages vma_base;
  Printf.printf "run: %d cycles\n" (Machine.cycles machine);
  let cs = Core.stats (Machine.core machine 0) in
  Printf.printf
    "late-translation faults: %d (imprecise on stores: %d episodes; precise \
     on loads: %d)\n"
    (Midgard.faults_taken midgard) cs.Core.imprecise_exceptions
    os.Ise_os.Handler.precise_faults;
  Printf.printf "page walks at LLC misses: %d, pages now mapped: %d, IOs: %d\n"
    (Midgard.walks_performed midgard)
    (Midgard.pages_mapped midgard) os.Ise_os.Handler.io_requests;
  let ok = ref true in
  for i = 0 to pages - 1 do
    if Machine.read_word machine (vma_base + (i * 4096)) <> i * 11 then ok := false
  done;
  Printf.printf "all stores applied after mapping: %b\n" !ok;
  match Machine.check_contract machine with
  | Ok () -> print_endline "contract: SATISFIED"
  | Error v -> Printf.printf "contract: VIOLATED %s\n" v.Ise_core.Contract.detail
