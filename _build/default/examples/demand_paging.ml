(* Batched demand paging (paper §5.3).

   When several faulting stores hit major page faults, a precise-
   exception system takes one exception per fault and serialises the
   IO.  With imprecise store exceptions, one handler invocation covers
   every faulting store in the store buffer and schedules all the IO
   requests together, overlapping their latencies.

   Run with: dune exec examples/demand_paging.exe *)

open Ise_sim
open Ise_os

let pages = 12
let io_latency = 40_000

let () =
  let base = Config.default.Config.einject_base in
  (* A burst of stores, each touching a different non-resident page. *)
  let burst =
    List.init pages (fun i ->
        Sim_instr.St
          { addr = Sim_instr.addr (base + (i * 4096));
            data = Sim_instr.Imm (100 + i) })
  in
  (* The serial variant puts a fence after each store, so every page
     fault is taken alone — the precise-exception behaviour. *)
  let serial =
    List.concat_map (fun st -> [ st; Sim_instr.Fence ]) burst
  in

  let run program =
    let table = Page_table.create ~page_bits:12 in
    for i = 0 to pages - 1 do
      Page_table.set_presence table (base + (i * 4096)) Page_table.Absent_major
    done;
    let config =
      { Handler.costs = Ise_core.Batch.default_cost_model;
        policy = Handler.Demand_paging { table; io_latency } }
    in
    let machine = Machine.create ~programs:[| Sim_instr.of_list program |] () in
    let os = Handler.install ~config machine in
    for i = 0 to pages - 1 do
      Einject.set_faulting (Machine.einject machine) (base + (i * 4096))
    done;
    Machine.run machine;
    (* all stores must have landed *)
    for i = 0 to pages - 1 do
      assert (Machine.read_word machine (base + (i * 4096)) = 100 + i)
    done;
    (Machine.cycles machine, os)
  in

  let batched_cycles, batched_os = run burst in
  let serial_cycles, serial_os = run serial in
  Printf.printf "%d major page faults, IO latency %d cycles each\n\n" pages
    io_latency;
  Printf.printf
    "serialised (fence per store):  %7d cycles, %2d handler invocations, %2d IOs\n"
    serial_cycles serial_os.Handler.invocations serial_os.Handler.io_requests;
  Printf.printf
    "batched (single burst):        %7d cycles, %2d handler invocations, %2d IOs\n"
    batched_cycles batched_os.Handler.invocations batched_os.Handler.io_requests;
  Printf.printf "\nspeedup from batching the IO: %.1fx\n"
    (float_of_int serial_cycles /. float_of_int batched_cycles);
  print_endline
    "One imprecise exception covers every faulting store in the store\n\
     buffer, so the OS schedules all the IO in one invocation and the\n\
     latencies overlap — the paper's batching argument."
