(* Quickstart: build a two-core machine, make a store fault after
   retirement, and watch the imprecise store-exception machinery handle
   it transparently.

   Run with: dune exec examples/quickstart.exe *)

open Ise_sim

let () =
  let base = Config.default.Config.einject_base in
  (* Core 0 publishes data then a flag, fenced — the Figure 1 pattern.
     Core 1 waits a while, then reads flag and data. *)
  let producer =
    [ Sim_instr.St { addr = Sim_instr.addr base; data = Sim_instr.Imm 42 };
      Sim_instr.Fence;
      Sim_instr.St { addr = Sim_instr.addr (base + 4096); data = Sim_instr.Imm 1 } ]
  in
  let consumer =
    [ Sim_instr.Nop 20_000; Sim_instr.Fence;
      Sim_instr.Ld { dst = 0; addr = Sim_instr.addr (base + 4096) };
      Sim_instr.Fence;
      Sim_instr.Ld { dst = 1; addr = Sim_instr.addr base } ]
  in
  let machine =
    Machine.create
      ~programs:[| Sim_instr.of_list producer; Sim_instr.of_list consumer |]
      ()
  in
  (* Install the reference OS handler (GET → resolve → apply → RESOLVE). *)
  let os = Ise_os.Handler.install machine in
  (* Mark both pages faulting: the producer's stores will be denied in
     the memory hierarchy *after* they retired — imprecise store
     exceptions. *)
  Einject.set_faulting (Machine.einject machine) base;
  Einject.set_faulting (Machine.einject machine) (base + 4096);
  Machine.run machine;

  Printf.printf "run finished in %d cycles\n" (Machine.cycles machine);
  Printf.printf "consumer read: flag=%d data=%d\n"
    (Core.reg (Machine.core machine 1) 0)
    (Core.reg (Machine.core machine 1) 1);
  Printf.printf "final memory:  data=%d flag=%d\n"
    (Machine.read_word machine base)
    (Machine.read_word machine (base + 4096));
  let stats tid = Core.stats (Machine.core machine tid) in
  Printf.printf "core 0: %d imprecise exception(s), %d faulting store(s)\n"
    (stats 0).Core.imprecise_exceptions (stats 0).Core.faulting_stores;
  Printf.printf "OS handler: %d invocation(s), %d store(s) applied, %d precise fault(s)\n"
    os.Ise_os.Handler.invocations os.Ise_os.Handler.stores_handled
    os.Ise_os.Handler.precise_faults;

  print_endline "\ninterface trace (Table 5 operations):";
  List.iter
    (fun ev -> Format.printf "  %a@." Ise_core.Contract.pp_event ev)
    (Machine.trace machine);
  match Machine.check_contract machine with
  | Ok () -> print_endline "contract: SATISFIED"
  | Error v ->
    Printf.printf "contract: VIOLATED [%s]: %s\n" v.Ise_core.Contract.rule
      v.Ise_core.Contract.detail
