(* A tour of the litmus machinery: the axiomatic model and the
   operational machine side by side, with and without injected
   imprecise exceptions.

   Run with: dune exec examples/litmus_tour.exe *)

open Ise_litmus
open Ise_model

let show_test cfg_name cfg (test : Lit_test.t) =
  Format.printf "@.%a" Lit_test.pp test;
  let allowed = Check.allowed Axiom.wc test.Lit_test.threads in
  Format.printf "  model-allowed outcomes (WC): %d@."
    (Outcome.Set.cardinal allowed);
  Outcome.Set.iter (fun o -> Format.printf "    %a@." Outcome.pp o) allowed;
  List.iter
    (fun inject ->
      let r = Lit_run.run ~seeds:15 ~inject_faults:inject ~cfg test in
      Format.printf
        "  machine (%s%s): %d distinct outcomes over %d runs, pass=%b%s@."
        cfg_name
        (if inject then ", all pages faulting" else "")
        (Outcome.Set.cardinal r.Lit_run.observed)
        r.Lit_run.runs r.Lit_run.pass
        (if r.Lit_run.interesting_observed then
           "  [relaxed outcome observed!]"
         else ""))
    [ false; true ]

let () =
  let wc = Ise_sim.Config.with_consistency Axiom.Wc Ise_sim.Config.default in
  print_endline "=== Store buffering (SB): the relaxation everyone has ===";
  show_test "WC" wc Library.sb;
  print_endline "\n=== Message passing (MP), unfenced: W->W order matters ===";
  show_test "WC" wc Library.mp;
  print_endline "\n=== Message passing with fences: forbidden everywhere ===";
  show_test "WC" wc Library.mp_fenced;
  print_endline "\n=== Parallel fetch-add: atomicity survives exceptions ===";
  show_test "WC" wc Library.amo_add_add;

  (* And the theorem behind the design: same-stream preserves the
     model, split-stream weakens it (checked by enumeration). *)
  print_endline "\n=== Proof-by-enumeration on MP (Section 4.5/4.6) ===";
  Printf.printf "same-stream preserves PC on MP: %b\n"
    (Imprecise.same_stream_preserves Axiom.pc Library.mp.Lit_test.threads);
  Printf.printf "split-stream only ever adds outcomes on MP: %b\n"
    (Imprecise.split_stream_weakens Axiom.pc Library.mp.Lit_test.threads);
  Printf.printf "fig-2 race: split violates PC %b / same violates PC %b\n"
    (Imprecise.fig2_violates_pc Imprecise.Split)
    (Imprecise.fig2_violates_pc Imprecise.Same)
