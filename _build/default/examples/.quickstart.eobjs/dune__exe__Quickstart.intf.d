examples/quickstart.mli:
