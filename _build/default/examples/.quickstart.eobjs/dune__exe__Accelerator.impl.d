examples/accelerator.ml: Config Core Einject Hashtbl Ise_os Ise_sim Ise_util List Machine Printf Sim_instr
