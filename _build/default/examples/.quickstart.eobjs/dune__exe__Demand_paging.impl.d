examples/demand_paging.ml: Config Einject Handler Ise_core Ise_os Ise_sim List Machine Page_table Printf Sim_instr
