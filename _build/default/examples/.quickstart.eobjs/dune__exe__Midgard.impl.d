examples/midgard.ml: Core Ise_core Ise_os Ise_sim List Machine Memsys Midgard Printf Sim_instr
