examples/quickstart.ml: Config Core Einject Format Ise_core Ise_os Ise_sim List Machine Printf Sim_instr
