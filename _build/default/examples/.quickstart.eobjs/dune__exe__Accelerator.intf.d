examples/accelerator.mli:
