examples/midgard.mli:
