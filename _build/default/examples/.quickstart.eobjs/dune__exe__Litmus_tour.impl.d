examples/litmus_tour.ml: Axiom Check Format Imprecise Ise_litmus Ise_model Ise_sim Library List Lit_run Lit_test Outcome Printf
