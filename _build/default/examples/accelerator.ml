(* A täkō-style accelerator scenario (paper §2.2, Example 1).

   A compression accelerator sits next to the LLC: data in its region
   is stored compressed in memory, and the accelerator's
   software-defined callback can page-fault while servicing a core's
   store.  The core has long retired the store — the exception is
   imprecise.

   We model the accelerator's faulting behaviour with EInject (each
   page's first touch faults, as if the callback's metadata needed to
   be paged in) and run a small record-compaction workload over the
   accelerator-managed region.

   Run with: dune exec examples/accelerator.exe *)

open Ise_sim

let records = 512
let record_words = 4

let () =
  let input = Config.default.Config.einject_base + 0x0100_0000 in
  let output = Config.default.Config.einject_base in
  let rng = Ise_util.Rng.create 99 in
  (* The workload: read each input record, compute a "compressed"
     summary, store it to the accelerator-managed output region — the
     accelerator's callback can fault while servicing those stores. *)
  let reg = ref 0 in
  let instrs = ref [] in
  let expected = Hashtbl.create 64 in
  for r = 0 to records - 1 do
    let addr = input + (8 * r * record_words) in
    reg := (!reg + 1) mod 32;
    instrs := Sim_instr.Ld { dst = !reg; addr = Sim_instr.addr addr } :: !instrs;
    instrs := Sim_instr.Nop 3 :: !instrs;  (* the compression "work" *)
    let summary = 0xC0DE + r in
    Hashtbl.replace expected (output + (8 * r)) summary;
    instrs :=
      Sim_instr.St
        { addr = Sim_instr.addr (output + (8 * r)); data = Sim_instr.Imm summary }
      :: !instrs;
    if Ise_util.Rng.int rng 100 < 10 then instrs := Sim_instr.Fence :: !instrs
  done;
  let program = List.rev !instrs in

  let run ~inject =
    let machine = Machine.create ~programs:[| Sim_instr.of_list program |] () in
    Machine.set_trace_enabled machine false;
    let os = Ise_os.Handler.install machine in
    if inject then begin
      (* every page of the accelerator-managed output region faults on
         first touch *)
      let bytes = records * 8 in
      let p = ref output in
      while !p < output + bytes do
        Einject.set_faulting (Machine.einject machine) !p;
        p := !p + 4096
      done
    end;
    Machine.run machine;
    (machine, os)
  in

  let plain, _ = run ~inject:false in
  let faulty, os = run ~inject:true in
  let verify m =
    Hashtbl.fold (fun a v ok -> ok && Machine.read_word m a = v) expected true
  in
  Printf.printf "records compacted: %d\n" records;
  Printf.printf "baseline run:     %7d cycles, results correct: %b\n"
    (Machine.cycles plain) (verify plain);
  Printf.printf "accelerator run:  %7d cycles, results correct: %b\n"
    (Machine.cycles faulty) (verify faulty);
  Printf.printf "relative performance: %.3f\n"
    (float_of_int (Machine.cycles plain) /. float_of_int (Machine.cycles faulty));
  let cs = Core.stats (Machine.core faulty 0) in
  Printf.printf
    "accelerator exceptions: %d imprecise (on stores, handled in batches of \
     %.1f on average), %d precise (on loads)\n"
    cs.Core.imprecise_exceptions
    (Ise_util.Stats.mean os.Ise_os.Handler.batch_sizes)
    os.Ise_os.Handler.precise_faults;
  print_endline
    "\nThe user program never sees the accelerator's page faults: the\n\
     faulting stores ride the FSB to the OS, which resolves and applies\n\
     them before resuming — imprecise, but transparent."
