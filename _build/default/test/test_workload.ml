open Ise_workload
open Ise_sim

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let base = Config.default.Config.einject_base

(* ------------------------------------------------------------------ *)
(* Mix                                                                 *)

let test_mix_profiles_complete () =
  check Alcotest.int "eight workloads" 8 (List.length Mix.table3);
  List.iter
    (fun p ->
      check Alcotest.bool (p.Mix.name ^ " percentages sane") true
        (p.Mix.store_pct + p.Mix.load_pct + p.Mix.sync_pct <= 100))
    Mix.table3

let test_mix_find () =
  let p = Mix.find "BC" in
  check Alcotest.int "BC stores" 25 p.Mix.store_pct;
  check Alcotest.int "BC loads" 25 p.Mix.load_pct

let test_mix_stream_matches_profile () =
  let p = Mix.find "BFS" in
  let s = Mix.stream ~seed:3 ~length:20_000 ~base:0x8000_0000 p in
  let stores = ref 0 and loads = ref 0 and fences = ref 0 and total = ref 0 in
  let rec loop () =
    match s () with
    | None -> ()
    | Some i ->
      incr total;
      (match i with
       | Sim_instr.St _ -> incr stores
       | Sim_instr.Ld _ -> incr loads
       | Sim_instr.Fence -> incr fences
       | _ -> ());
      loop ()
  in
  loop ();
  check Alcotest.int "length" 20_000 !total;
  let pct n = 100 * n / !total in
  check Alcotest.bool "store pct ~11" true (abs (pct !stores - 11) <= 2);
  check Alcotest.bool "load pct ~22" true (abs (pct !loads - 22) <= 2)

let test_mix_multicore_disjoint_private () =
  let p = Mix.find "BFS" in
  let streams = Mix.multicore_streams ~seed:1 ~length_per_core:100 ~cores:2 p in
  check Alcotest.int "two streams" 2 (Array.length streams)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)

let mk_graph () =
  Graph.uniform (Ise_util.Rng.create 42) ~nodes:300 ~avg_degree:5

let test_graph_csr_wellformed () =
  let g = mk_graph () in
  check Alcotest.int "offsets length" (Graph.nodes g + 1)
    (Array.length g.Graph.offsets);
  check Alcotest.int "monotonic last" (Graph.nedges g)
    g.Graph.offsets.(Graph.nodes g);
  for v = 0 to Graph.nodes g - 1 do
    if g.Graph.offsets.(v) > g.Graph.offsets.(v + 1) then
      Alcotest.fail "offsets not monotonic"
  done

let test_graph_bfs_sane () =
  let g = mk_graph () in
  let dist = Graph.bfs_distances g ~src:0 in
  check Alcotest.int "source" 0 dist.(0);
  (* triangle inequality along each edge *)
  for u = 0 to Graph.nodes g - 1 do
    if dist.(u) < max_int then
      List.iter
        (fun (v, _) ->
          if dist.(v) > dist.(u) + 1 then Alcotest.fail "bfs violates edge")
        (Graph.neighbors g u)
  done

let test_graph_sssp_dominated_by_bfs () =
  let g = mk_graph () in
  let hops = Graph.bfs_distances g ~src:0 in
  let dist = Graph.sssp_distances g ~src:0 in
  (* weights are >= 1, so weighted distance >= hop count *)
  for v = 0 to Graph.nodes g - 1 do
    if hops.(v) < max_int && dist.(v) < max_int && dist.(v) < hops.(v) then
      Alcotest.fail "sssp shorter than hops"
  done

let test_graph_bc_nonnegative () =
  let g = mk_graph () in
  let bc = Graph.bc_scores g ~sources:[ 0; 1 ] in
  Array.iter (fun s -> if s < 0.0 then Alcotest.fail "negative centrality") bc

let prop_graph_power_law_edges =
  QCheck.Test.make ~name:"power-law graphs are well-formed CSR" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g =
        Graph.power_law (Ise_util.Rng.create seed) ~nodes:100 ~avg_degree:4
      in
      Array.for_all (fun e -> e >= 0 && e < Graph.nodes g) g.Graph.edges
      && g.Graph.offsets.(Graph.nodes g) = Graph.nedges g)

(* ------------------------------------------------------------------ *)
(* Gap traces                                                          *)

let test_gap_bfs_trace_runs_and_verifies () =
  let g = Graph.uniform (Ise_util.Rng.create 7) ~nodes:400 ~avg_degree:4 in
  let tr = Gap.bfs g ~base ~src:0 in
  let m = Machine.create ~programs:[| Gap.stream_of tr |] () in
  ignore (Ise_os.Handler.install m);
  Machine.run m;
  check Alcotest.bool "results in memory" true (Gap.verify m tr)

let test_gap_bfs_matches_reference () =
  let g = Graph.uniform (Ise_util.Rng.create 9) ~nodes:300 ~avg_degree:4 in
  let tr = Gap.bfs ~include_build:false g ~base ~src:0 in
  let reference = Graph.bfs_distances g ~src:0 in
  (* every store of a distance in the trace matches the reference *)
  let dist_base =
    (* dist array is the last region: find the minimum stored address *)
    List.fold_left (fun acc (a, _) -> min acc a) max_int tr.Gap.expected
  in
  List.iter
    (fun (a, v) ->
      let node = (a - dist_base) / 8 in
      if node >= 0 && node < Graph.nodes g && reference.(node) < max_int then
        check Alcotest.int (Printf.sprintf "dist[%d]" node) reference.(node) v)
    tr.Gap.expected

let test_gap_fault_transparency () =
  let g = Graph.uniform (Ise_util.Rng.create 11) ~nodes:300 ~avg_degree:4 in
  let tr = Gap.bfs g ~base ~src:0 in
  let m = Machine.create ~programs:[| Gap.stream_of tr |] () in
  ignore (Ise_os.Handler.install m);
  Gap.mark_faulting m tr;
  Machine.run m;
  check Alcotest.bool "verified under injection" true (Gap.verify m tr);
  check Alcotest.bool "exceptions actually happened" true
    ((Core.stats (Machine.core m 0)).Core.imprecise_exceptions > 0)

let test_gap_sssp_trace () =
  let g = Graph.uniform (Ise_util.Rng.create 13) ~nodes:200 ~avg_degree:4 in
  let tr = Gap.sssp g ~base ~src:0 in
  let m = Machine.create ~programs:[| Gap.stream_of tr |] () in
  ignore (Ise_os.Handler.install m);
  Machine.run m;
  check Alcotest.bool "sssp verifies" true (Gap.verify m tr)

let test_gap_bc_trace () =
  let g = Graph.uniform (Ise_util.Rng.create 17) ~nodes:150 ~avg_degree:4 in
  let tr = Gap.bc g ~base ~sources:[ 0 ] in
  let m = Machine.create ~programs:[| Gap.stream_of tr |] () in
  ignore (Ise_os.Handler.install m);
  Machine.run m;
  check Alcotest.bool "bc verifies" true (Gap.verify m tr)

let test_gap_bc_store_heavier_than_bfs () =
  let g = Graph.uniform (Ise_util.Rng.create 19) ~nodes:200 ~avg_degree:4 in
  let count_stores tr =
    Array.fold_left
      (fun acc i -> if Sim_instr.is_store i then acc + 1 else acc)
      0 tr.Gap.instrs
  in
  let frac tr =
    float_of_int (count_stores tr) /. float_of_int (Array.length tr.Gap.instrs)
  in
  let bfs = Gap.bfs ~include_build:false g ~base ~src:0 in
  let bc = Gap.bc ~include_build:false g ~base ~sources:[ 0 ] in
  check Alcotest.bool "BC is store-heavier" true (frac bc > frac bfs)

(* ------------------------------------------------------------------ *)
(* Tailbench                                                           *)

let test_silo_trace_shape () =
  let tr = Tailbench.silo ~requests:50 ~base () in
  check Alcotest.int "requests recorded" 50 tr.Tailbench.requests;
  let fences =
    Array.fold_left
      (fun acc i -> if i = Sim_instr.Fence then acc + 1 else acc)
      0 tr.Tailbench.instrs
  in
  check Alcotest.int "one commit fence per txn" 50 fences

let test_masstree_pointer_chase () =
  let tr = Tailbench.masstree ~requests:20 ~depth:4 ~base () in
  (* each request contains depth dependent loads *)
  let dependent_loads =
    Array.fold_left
      (fun acc i ->
        match i with
        | Sim_instr.Ld { addr = { Sim_instr.dep = Some _; _ }; _ } -> acc + 1
        | _ -> acc)
      0 tr.Tailbench.instrs
  in
  check Alcotest.int "three dependent loads per request" (20 * 3) dependent_loads

let test_tailbench_runs () =
  let tr = Tailbench.silo ~requests:100 ~base () in
  let m = Machine.create ~programs:[| Tailbench.stream_of tr |] () in
  ignore (Ise_os.Handler.install m);
  Machine.run m;
  let tput = Tailbench.throughput tr ~cycles:(Machine.cycles m) in
  check Alcotest.bool "throughput positive" true (tput > 0.)

let test_tailbench_faults_slow_but_complete () =
  let tr = Tailbench.silo ~requests:60 ~slots:1024 ~base () in
  let run mark =
    let m = Machine.create ~programs:[| Tailbench.stream_of tr |] () in
    ignore (Ise_os.Handler.install m);
    if mark then Tailbench.mark_faulting m tr;
    Machine.run m;
    Machine.cycles m
  in
  let plain = run false and faulted = run true in
  check Alcotest.bool "faulted run costs more" true (faulted > plain)

(* ------------------------------------------------------------------ *)
(* Mbench                                                              *)

let test_mbench_batching_wins () =
  let unbatched = Mbench.run ~stores:300 ~batching:false () in
  let batched = Mbench.run ~stores:300 ~batching:true () in
  check Alcotest.bool "batched cheaper per store" true
    (batched.Mbench.total_per_store < unbatched.Mbench.total_per_store);
  check Alcotest.bool "bigger batches" true
    (batched.Mbench.avg_batch > unbatched.Mbench.avg_batch);
  check Alcotest.bool "unbatched is ~600 cycles" true
    (unbatched.Mbench.total_per_store > 350.
     && unbatched.Mbench.total_per_store < 1200.);
  check Alcotest.bool "uarch is the tiny fraction" true
    (unbatched.Mbench.uarch_per_store < 0.2 *. unbatched.Mbench.total_per_store)

let suite =
  [
    ("mix profiles complete", `Quick, test_mix_profiles_complete);
    ("mix find", `Quick, test_mix_find);
    ("mix stream matches profile", `Quick, test_mix_stream_matches_profile);
    ("mix multicore streams", `Quick, test_mix_multicore_disjoint_private);
    ("graph CSR well-formed", `Quick, test_graph_csr_wellformed);
    ("graph bfs sane", `Quick, test_graph_bfs_sane);
    ("graph sssp >= hops", `Quick, test_graph_sssp_dominated_by_bfs);
    ("graph bc non-negative", `Quick, test_graph_bc_nonnegative);
    qtest prop_graph_power_law_edges;
    ("gap bfs runs and verifies", `Quick, test_gap_bfs_trace_runs_and_verifies);
    ("gap bfs matches reference", `Quick, test_gap_bfs_matches_reference);
    ("gap fault transparency", `Quick, test_gap_fault_transparency);
    ("gap sssp trace", `Quick, test_gap_sssp_trace);
    ("gap bc trace", `Quick, test_gap_bc_trace);
    ("gap BC store-heavier than BFS", `Quick, test_gap_bc_store_heavier_than_bfs);
    ("silo trace shape", `Quick, test_silo_trace_shape);
    ("masstree pointer chase", `Quick, test_masstree_pointer_chase);
    ("tailbench runs", `Quick, test_tailbench_runs);
    ("tailbench faults slow but complete", `Quick, test_tailbench_faults_slow_but_complete);
    ("mbench batching wins", `Slow, test_mbench_batching_wins);
  ]
