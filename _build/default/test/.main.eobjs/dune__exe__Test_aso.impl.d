test/test_aso.ml: Alcotest Aso_core Checkpoint Ise_aso Ise_model Ise_sim Ise_workload List QCheck QCheck_alcotest Spec_state
