test/test_model.ml: Alcotest Array Axiom Check Enum Event Exec Imprecise Instr Ise_litmus Ise_model Ise_util List Outcome QCheck QCheck_alcotest Rel Seq String
