test/test_util.ml: Alcotest Array Bitset Ise_util List Option Pqueue QCheck QCheck_alcotest Queue Ring_buffer Rng Stats String Table
