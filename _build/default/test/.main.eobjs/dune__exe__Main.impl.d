test/main.ml: Alcotest Test_aso Test_core Test_integration Test_litmus Test_model Test_os Test_sim Test_util Test_workload
