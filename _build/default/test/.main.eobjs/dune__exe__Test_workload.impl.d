test/test_workload.ml: Alcotest Array Config Core Gap Graph Ise_os Ise_sim Ise_util Ise_workload List Machine Mbench Mix Printf QCheck QCheck_alcotest Sim_instr Tailbench
