test/test_litmus.ml: Alcotest Axiom Check Classify Gen Instr Ise_litmus Ise_model Ise_util Library List Lit_test Outcome Printf QCheck QCheck_alcotest
