test/test_os.ml: Alcotest Config Core Einject Handler Ise_core Ise_os Ise_sim Ise_util Kernel List Machine Page_table QCheck QCheck_alcotest Sim_instr Syscall
