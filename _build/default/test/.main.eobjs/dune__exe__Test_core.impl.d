test/test_core.ml: Alcotest Batch Contract Fault Fsb Ise_core List Protocol QCheck QCheck_alcotest Stdlib
