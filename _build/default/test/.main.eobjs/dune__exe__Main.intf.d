test/main.mli:
