test/test_integration.ml: Alcotest Config Gen Ise_core Ise_litmus Ise_model Ise_os Ise_sim Ise_util Ise_workload Library List Lit_run Lit_test Machine Memsys Stdlib
