open Ise_aso

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Spec_state                                                          *)

let test_spec_state_arithmetic () =
  let c = Spec_state.for_checkpoints ~checkpoints:4 ~ssb_entries:32 in
  check Alcotest.int "ssb" (32 * 16) c.Spec_state.ssb_bytes;
  check Alcotest.int "regs" (4 * 256) c.Spec_state.registers_bytes;
  check Alcotest.int "maps" (4 * 40) c.Spec_state.map_tables_bytes;
  check Alcotest.int "total"
    ((32 * 16) + (4 * 256) + (4 * 40) + Spec_state.fixed_cache_bits_bytes)
    (Spec_state.total_bytes c)

let test_spec_state_kb () =
  let c = Spec_state.for_checkpoints ~checkpoints:0 ~ssb_entries:0 in
  check (Alcotest.float 0.01) "fixed floor"
    (float_of_int Spec_state.fixed_cache_bits_bytes /. 1024.)
    (Spec_state.total_kb c)

let prop_spec_state_monotonic =
  QCheck.Test.make ~name:"spec state grows with checkpoints" ~count:50
    QCheck.(pair (int_range 0 63) (int_range 0 127))
    (fun (k, ssb) ->
      Spec_state.total_bytes (Spec_state.for_checkpoints ~checkpoints:(k + 1) ~ssb_entries:ssb)
      > Spec_state.total_bytes (Spec_state.for_checkpoints ~checkpoints:k ~ssb_entries:ssb))

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)

let test_checkpoint_allocate_release () =
  let p = Checkpoint.create ~max_checkpoints:2 in
  check Alcotest.bool "first" true (Checkpoint.try_allocate p ~store_seq:1);
  check Alcotest.bool "second" true (Checkpoint.try_allocate p ~store_seq:2);
  check Alcotest.bool "exhausted" false (Checkpoint.try_allocate p ~store_seq:3);
  check Alcotest.int "failure counted" 1 (Checkpoint.allocation_failures p);
  Checkpoint.complete p ~store_seq:1;
  check Alcotest.bool "freed" true (Checkpoint.try_allocate p ~store_seq:4);
  check Alcotest.int "watermark" 2 (Checkpoint.watermark p)

let test_checkpoint_rollback () =
  let p = Checkpoint.create ~max_checkpoints:8 in
  List.iter (fun s -> ignore (Checkpoint.try_allocate p ~store_seq:s)) [ 1; 2; 3; 4 ];
  let discarded = Checkpoint.rollback p ~store_seq:3 in
  check Alcotest.int "discards 3 and younger" 2 discarded;
  check Alcotest.int "older survive" 2 (Checkpoint.active p);
  check Alcotest.int "rollback counted" 1 (Checkpoint.rollbacks p)

(* ------------------------------------------------------------------ *)
(* Aso_core                                                            *)

let profile = Ise_workload.Mix.find "BFS"

let mk_programs () =
  Ise_workload.Mix.multicore_streams ~seed:11 ~length_per_core:8_000 ~cores:2 profile

let test_aso_run_metrics () =
  let r =
    Aso_core.run
      ~cfg:(Ise_sim.Config.with_consistency Ise_model.Axiom.Wc Ise_sim.Config.default)
      ~programs:mk_programs ()
  in
  check Alcotest.int "all retired" 16_000 r.Aso_core.retired;
  check Alcotest.bool "ipc sane" true (r.Aso_core.ipc > 0.1 && r.Aso_core.ipc < 4.0);
  check Alcotest.bool "watermarks observed" true (r.Aso_core.sb_occupancy_watermark > 0)

let test_aso_ipc_monotonic_in_checkpoints () =
  let ipc k =
    (Aso_core.run ~cfg:(Aso_core.aso_config ~checkpoints:k Ise_sim.Config.default)
       ~programs:mk_programs ())
      .Aso_core.ipc
  in
  let i1 = ipc 1 and i8 = ipc 8 and i32 = ipc 32 in
  check Alcotest.bool "more checkpoints, no slower" true (i8 >= i1 -. 0.01);
  check Alcotest.bool "saturates upward" true (i32 >= i8 -. 0.01)

let test_aso_sizing () =
  let s =
    Aso_core.size_for_wc_performance ~cfg:Ise_sim.Config.default
      ~programs:mk_programs ()
  in
  check Alcotest.bool "reaches target" true
    (s.Aso_core.aso_ipc >= 0.97 *. s.Aso_core.wc_ipc);
  check Alcotest.bool "wc beats sc" true (s.Aso_core.wc_speedup > 1.0);
  check Alcotest.bool "state within silicon budget shape" true
    (s.Aso_core.state_kb > 5. && s.Aso_core.state_kb < 40.)

let test_aso_skew_needs_more_state () =
  let sizing cfg =
    (Aso_core.size_for_wc_performance ~cfg ~programs:mk_programs ())
      .Aso_core.checkpoints
  in
  let base = sizing Ise_sim.Config.default in
  let skew = sizing (Ise_sim.Config.with_4x_store_skew Ise_sim.Config.default) in
  check Alcotest.bool "4x skew needs at least as many checkpoints" true
    (skew >= base)

let suite =
  [
    ("spec state arithmetic", `Quick, test_spec_state_arithmetic);
    ("spec state fixed floor", `Quick, test_spec_state_kb);
    qtest prop_spec_state_monotonic;
    ("checkpoint allocate/release", `Quick, test_checkpoint_allocate_release);
    ("checkpoint rollback", `Quick, test_checkpoint_rollback);
    ("aso run metrics", `Quick, test_aso_run_metrics);
    ("aso ipc monotonic in checkpoints", `Quick, test_aso_ipc_monotonic_in_checkpoints);
    ("aso sizing reaches WC", `Slow, test_aso_sizing);
    ("aso 4x skew needs more state", `Slow, test_aso_skew_needs_more_state);
  ]
