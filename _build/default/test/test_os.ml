open Ise_os
open Ise_sim

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let base = Config.default.Config.einject_base

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)

let test_pt_default_present () =
  let pt = Page_table.create ~page_bits:12 in
  check Alcotest.bool "unknown pages present" true
    (Page_table.presence pt 0x1234 = Page_table.Present)

let test_pt_resolve_minor () =
  let pt = Page_table.create ~page_bits:12 in
  Page_table.set_presence pt 0x4000 Page_table.Absent_minor;
  check Alcotest.bool "minor" true (Page_table.resolve pt 0x4abc = `Minor);
  check Alcotest.bool "now present" true (Page_table.resolve pt 0x4000 = `Was_present);
  check Alcotest.int "count" 1 (Page_table.minor_faults pt)

let test_pt_resolve_major () =
  let pt = Page_table.create ~page_bits:12 in
  Page_table.set_presence pt 0x8000 Page_table.Absent_major;
  check Alcotest.bool "major" true (Page_table.resolve pt 0x8000 = `Major);
  check Alcotest.int "majors" 1 (Page_table.major_faults pt);
  check Alcotest.int "mapped" 1 (Page_table.pages_mapped pt)

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)

let test_kernel_deliver () =
  let k = Kernel.create () in
  let handled = ref [] in
  let run d = handled := d :: !handled in
  check Alcotest.bool "delivered" true
    (Kernel.deliver k (Kernel.Interrupt 1) run);
  check Alcotest.int "one handled" 1 (List.length !handled);
  check Alcotest.bool "ie clear after" false (Kernel.ie k)

let test_kernel_queue_while_masked () =
  let k = Kernel.create () in
  let handled = ref [] in
  let run d = handled := d :: !handled in
  Kernel.enter k;
  check Alcotest.bool "queued" false
    (Kernel.deliver k (Kernel.Imprecise_exception 2) run);
  check Alcotest.int "pending" 1 (Kernel.pending k);
  Kernel.exit_and_drain k run;
  check Alcotest.int "drained" 1 (List.length !handled);
  check Alcotest.int "none pending" 0 (Kernel.pending k)

let test_kernel_no_recursion () =
  let k = Kernel.create () in
  Kernel.enter k;
  Alcotest.check_raises "recursive"
    (Failure "Kernel.enter: recursive handlers are not supported") (fun () ->
      Kernel.enter k)

let prop_kernel_all_delivered =
  QCheck.Test.make ~name:"every delivery eventually runs" ~count:100
    QCheck.(list bool)
    (fun masked_first ->
      let k = Kernel.create () in
      let count = ref 0 in
      let run _ = incr count in
      let sent = ref 0 in
      List.iter
        (fun mask ->
          if mask && not (Kernel.ie k) then Kernel.enter k;
          ignore (Kernel.deliver k (Kernel.Interrupt 0) run);
          incr sent;
          if Kernel.ie k then Kernel.exit_and_drain k run)
        masked_first;
      Kernel.exit_and_drain k run;
      !count = !sent)

(* ------------------------------------------------------------------ *)
(* Handler                                                             *)

let st a v = Sim_instr.St { addr = Sim_instr.addr a; data = Sim_instr.Imm v }

let test_handler_batching_counts () =
  (* several stores to faulting pages back-to-back: one invocation
     covers them all *)
  let prog = List.init 6 (fun i -> st (base + (i * 4096)) (i + 1)) in
  let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
  let os = Handler.install m in
  for i = 0 to 5 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.run m;
  check Alcotest.bool "few invocations" true (os.Handler.invocations <= 3);
  check Alcotest.int "all stores handled" 6 os.Handler.faulting_handled;
  check Alcotest.bool "batched" true
    (Ise_util.Stats.max_value os.Handler.batch_sizes >= 2.);
  for i = 0 to 5 do
    check Alcotest.int "applied" (i + 1) (Machine.read_word m (base + (i * 4096)))
  done

let test_handler_unbatched_with_fences () =
  let prog =
    List.concat (List.init 3 (fun i -> [ st (base + (i * 4096)) (i + 1); Sim_instr.Fence ]))
  in
  let m = Machine.create ~programs:[| Sim_instr.of_list prog |] () in
  let os = Handler.install m in
  for i = 0 to 2 do
    Einject.set_faulting (Machine.einject m) (base + (i * 4096))
  done;
  Machine.run m;
  check Alcotest.int "one invocation per store" 3 os.Handler.invocations;
  check (Alcotest.float 0.01) "batch of one" 1.0
    (Ise_util.Stats.mean os.Handler.batch_sizes)

let test_handler_demand_paging_majors () =
  let pt = Page_table.create ~page_bits:12 in
  Page_table.set_presence pt base Page_table.Absent_major;
  let config =
    { Handler.costs = Ise_core.Batch.default_cost_model;
      policy = Handler.Demand_paging { table = pt; io_latency = 10_000 } }
  in
  let m = Machine.create ~programs:[| Sim_instr.of_list [ st base 5 ] |] () in
  let os = Handler.install ~config m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.int "one IO request" 1 os.Handler.io_requests;
  check Alcotest.bool "IO latency paid" true (Machine.cycles m > 10_000);
  check Alcotest.int "store applied" 5 (Machine.read_word m base)

let test_handler_precise_cost () =
  let m =
    Machine.create
      ~programs:[| Sim_instr.of_list [ Sim_instr.Ld { dst = 0; addr = Sim_instr.addr base } ] |]
      ()
  in
  let os = Handler.install m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.int "precise handled" 1 os.Handler.precise_faults;
  (* dispatch + resolve + os_other at defaults = 522 cycles minimum *)
  check Alcotest.bool "cost paid" true (Machine.cycles m > 500)

let test_handler_stats_breakdown () =
  let m = Machine.create ~programs:[| Sim_instr.of_list [ st base 1 ] |] () in
  let os = Handler.install m in
  Einject.set_faulting (Machine.einject m) base;
  Machine.run m;
  check Alcotest.bool "apply cycles accounted" true (os.Handler.apply_cycles > 0);
  check Alcotest.bool "other cycles accounted" true (os.Handler.other_cycles > 0);
  let uarch = (Core.stats (Machine.core m 0)).Core.drain_uarch_cycles in
  check Alcotest.bool "uarch is the small fraction" true
    (uarch < os.Handler.other_cycles)

(* ------------------------------------------------------------------ *)
(* Syscall (§5.4)                                                      *)

let test_copy_to_user_clean () =
  let r =
    Syscall.run_copy_to_user ~dst:base ~values:[ 1; 2; 3 ] ~mark_faulting:false ()
  in
  check Alcotest.bool "completed" true r.Syscall.completed;
  check Alcotest.bool "data correct" true r.Syscall.data_correct;
  check Alcotest.int "no kernel exceptions" 0 r.Syscall.kernel_exceptions

let test_copy_to_user_contained () =
  let r =
    Syscall.run_copy_to_user ~dst:base ~values:[ 10; 20; 30; 40 ]
      ~mark_faulting:true ()
  in
  check Alcotest.bool "completed" true r.Syscall.completed;
  check Alcotest.bool "data correct" true r.Syscall.data_correct;
  check Alcotest.bool "kernel took imprecise exceptions" true
    (r.Syscall.kernel_exceptions >= 1);
  check Alcotest.bool "contained by the fence" true r.Syscall.contained

let test_copy_to_user_stub_shape () =
  let stub = Syscall.copy_to_user ~dst:base ~values:[ 1; 2 ] in
  check Alcotest.int "two stores and a fence" 3 (List.length stub);
  check Alcotest.bool "ends with fence" true
    (List.nth stub 2 = Ise_sim.Sim_instr.Fence)

let suite =
  [
    ("page table default present", `Quick, test_pt_default_present);
    ("page table minor fault", `Quick, test_pt_resolve_minor);
    ("page table major fault", `Quick, test_pt_resolve_major);
    ("kernel delivery", `Quick, test_kernel_deliver);
    ("kernel queues while masked", `Quick, test_kernel_queue_while_masked);
    ("kernel rejects recursion", `Quick, test_kernel_no_recursion);
    qtest prop_kernel_all_delivered;
    ("handler batching", `Quick, test_handler_batching_counts);
    ("handler unbatched with fences", `Quick, test_handler_unbatched_with_fences);
    ("handler demand paging majors", `Quick, test_handler_demand_paging_majors);
    ("handler precise cost", `Quick, test_handler_precise_cost);
    ("handler stats breakdown", `Quick, test_handler_stats_breakdown);
    ("copy_to_user clean", `Quick, test_copy_to_user_clean);
    ("copy_to_user containment (§5.4)", `Quick, test_copy_to_user_contained);
    ("copy_to_user stub shape", `Quick, test_copy_to_user_stub_shape);
  ]
