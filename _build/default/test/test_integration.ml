(* Cross-library integration: the paper's headline claims, end to end. *)

open Ise_litmus
open Ise_sim

let check = Alcotest.check

let base = Config.default.Config.einject_base

(* §6.3: the machine never exhibits an outcome the model forbids, with
   exceptions injected on every location, under WC (the prototype's
   RVWMO stand-in). *)
let test_litmus_suite_wc_with_faults () =
  let cfg = Config.with_consistency Ise_model.Axiom.Wc Config.default in
  let results = Lit_run.run_suite ~seeds:8 ~inject_faults:true ~cfg Library.all in
  List.iter
    (fun r ->
      check Alcotest.bool (r.Lit_run.test.Lit_test.name ^ " passes") true
        r.Lit_run.pass;
      check Alcotest.bool
        (r.Lit_run.test.Lit_test.name ^ " contract") true r.Lit_run.contract_ok)
    results;
  (* the error-injection methodology actually injected *)
  let total_imprecise =
    List.fold_left (fun acc r -> acc + r.Lit_run.imprecise_exceptions) 0 results
  in
  check Alcotest.bool "imprecise exceptions injected" true (total_imprecise > 50)

let test_litmus_suite_pc_with_faults () =
  let cfg = Config.with_consistency Ise_model.Axiom.Pc Config.default in
  let results = Lit_run.run_suite ~seeds:6 ~inject_faults:true ~cfg Library.all in
  check Alcotest.bool "all pass under PC" true (Lit_run.all_pass results)

let test_litmus_suite_without_faults () =
  let cfg = Config.with_consistency Ise_model.Axiom.Wc Config.default in
  let results = Lit_run.run_suite ~seeds:8 ~inject_faults:false ~cfg Library.all in
  check Alcotest.bool "all pass fault-free" true (Lit_run.all_pass results)

let test_litmus_generated_suite () =
  let cfg = Config.with_consistency Ise_model.Axiom.Wc Config.default in
  let tests = Gen.generate_suite ~seed:21 ~count:15 Gen.default_params in
  let results = Lit_run.run_suite ~seeds:5 ~inject_faults:true ~cfg tests in
  check Alcotest.bool "generated tests pass" true (Lit_run.all_pass results)

(* The machine does exhibit genuinely relaxed behaviour: SB's 0,0 *)
let test_relaxed_behaviour_observable () =
  let cfg = Config.with_consistency Ise_model.Axiom.Wc Config.default in
  let r = Lit_run.run ~seeds:40 ~inject_faults:false ~cfg Library.sb in
  check Alcotest.bool "store buffering observed" true r.Lit_run.interesting_observed

(* §4.5/§4.6 ablation: under PC, the split-stream protocol admits the
   MP violation in the model while same-stream does not. *)
let test_split_stream_model_ablation () =
  (* only the older store S(x) faults; the younger S(y) drains direct *)
  let faulting = [ (0, 0) ] in
  let pc_split =
    Ise_model.Check.allowed ~faulting
      (Ise_model.Axiom.with_faults Ise_model.Axiom.Split_stream Ise_model.Axiom.pc)
      Library.mp.Lit_test.threads
  in
  let pc_same =
    Ise_model.Check.allowed ~faulting
      (Ise_model.Axiom.with_faults Ise_model.Axiom.Same_stream Ise_model.Axiom.pc)
      Library.mp.Lit_test.threads
  in
  let violation o =
    Ise_model.Outcome.reg o 1 0 = 1 && Ise_model.Outcome.reg o 1 1 = 0
  in
  check Alcotest.bool "split admits" true
    (Ise_model.Outcome.Set.exists violation pc_split);
  check Alcotest.bool "same forbids" false
    (Ise_model.Outcome.Set.exists violation pc_same)

(* Operationally, the split-stream machine under PC stays within the
   split-stream model (which is weaker than PC). *)
let test_split_stream_machine_within_model () =
  let cfg =
    { (Config.with_consistency Ise_model.Axiom.Pc Config.default) with
      Config.protocol_mode = Ise_core.Protocol.Split_stream }
  in
  let r = Lit_run.run ~seeds:12 ~inject_faults:true ~cfg Library.mp in
  check Alcotest.bool "observed ⊆ split-stream-allowed" true r.Lit_run.pass

(* Interrupt storm: litmus correctness survives timer interrupts
   firing concurrently with injected exceptions (§5.3). *)
let test_litmus_with_interrupts () =
  let cfg = Config.with_consistency Ise_model.Axiom.Wc Config.default in
  let tests =
    [ Library.mp; Library.mp_fenced; Library.sb; Library.sb_fenced;
      Library.amo_add_add; Library.corr ]
  in
  let results =
    Lit_run.run_suite ~seeds:8 ~inject_faults:true ~timer_interrupts:true ~cfg
      tests
  in
  check Alcotest.bool "no violations under interrupt storm" true
    (Lit_run.all_pass results)

(* Midgard (§2.2 Example 2) end to end with the paging handler. *)
let test_midgard_end_to_end () =
  let midgard = Ise_sim.Midgard.create () in
  let vma = base + 0x0800_0000 in
  Ise_sim.Midgard.add_vma midgard ~base:vma ~bytes:(8 * 4096);
  let prog =
    List.init 8 (fun i ->
        Ise_sim.Sim_instr.St
          { addr = Ise_sim.Sim_instr.addr (vma + (i * 4096));
            data = Ise_sim.Sim_instr.Imm (i + 100) })
  in
  let m = Machine.create ~programs:[| Ise_sim.Sim_instr.of_list prog |] () in
  Memsys.add_interceptor (Machine.mem m) (Ise_sim.Midgard.interceptor midgard);
  let config =
    { Ise_os.Handler.costs = Ise_core.Batch.default_cost_model;
      policy =
        Ise_os.Handler.Midgard_paging
          { midgard; major_pct = 50; io_latency = 5_000 } }
  in
  let os = Ise_os.Handler.install ~config m in
  Machine.run m;
  check Alcotest.bool "late-translation faults occurred" true
    (Ise_sim.Midgard.faults_taken midgard >= 8);
  check Alcotest.int "all pages mapped" 8 (Ise_sim.Midgard.pages_mapped midgard);
  check Alcotest.bool "majors issued IO" true (os.Ise_os.Handler.io_requests >= 1);
  for i = 0 to 7 do
    check Alcotest.int "store landed" (i + 100)
      (Machine.read_word m (vma + (i * 4096)))
  done;
  check Alcotest.bool "contract holds" true
    (Stdlib.Result.is_ok (Machine.check_contract m))

(* §6.5 transparency at workload scale: a fault-injected BFS produces
   exactly the same result memory as the fault-free run. *)
let test_gap_scale_transparency () =
  let g =
    Ise_workload.Graph.power_law (Ise_util.Rng.create 23) ~nodes:800 ~avg_degree:6
  in
  let tr = Ise_workload.Gap.bfs g ~base ~src:0 in
  let cmp =
    Ise_workload.Runner.compare_with_faults
      ~mk_programs:(fun () -> [| Ise_workload.Gap.stream_of tr |])
      ~mark:(fun m -> Ise_workload.Gap.mark_faulting m tr)
      ~verify:(fun m -> Ise_workload.Gap.verify m tr)
      ()
  in
  check Alcotest.bool "exceptions were injected" true
    (cmp.Ise_workload.Runner.imprecise.Ise_workload.Runner.imprecise_exceptions > 5);
  check Alcotest.bool "slowdown bounded" true
    (cmp.Ise_workload.Runner.relative_perf > 0.5)

(* Batching shrinks the per-store handling cost on the machine, not
   just in the analytical model (Figure 5's comparison). *)
let test_fig5_shape_on_machine () =
  let unbatched = Ise_workload.Mbench.run ~stores:400 ~batching:false () in
  let batched = Ise_workload.Mbench.run ~stores:400 ~batching:true () in
  check Alcotest.bool "batching at least 2x" true
    (Ise_workload.Mbench.speedup unbatched batched > 2.0)

(* The analytic batching model and the measured machine agree on the
   unbatched anchor (~600 cycles per faulting store). *)
let test_fig5_model_vs_machine () =
  let analytic =
    Ise_core.Batch.total
      (Ise_core.Batch.per_store_overhead Ise_core.Batch.default_cost_model
         ~batch_size:1)
  in
  let measured =
    (Ise_workload.Mbench.run ~stores:300 ~batching:false ()).Ise_workload.Mbench
    .total_per_store
  in
  let ratio = measured /. analytic in
  check Alcotest.bool "within 2x of each other" true (ratio > 0.5 && ratio < 2.0)

let suite =
  [
    ("litmus suite, WC + faults (§6.3)", `Slow, test_litmus_suite_wc_with_faults);
    ("litmus suite, PC + faults", `Slow, test_litmus_suite_pc_with_faults);
    ("litmus suite, fault-free", `Slow, test_litmus_suite_without_faults);
    ("litmus generated suite", `Slow, test_litmus_generated_suite);
    ("relaxed behaviour observable", `Quick, test_relaxed_behaviour_observable);
    ("split-stream model ablation (Fig 2)", `Quick, test_split_stream_model_ablation);
    ("split-stream machine within model", `Quick, test_split_stream_machine_within_model);
    ("litmus under interrupt storm", `Slow, test_litmus_with_interrupts);
    ("midgard end-to-end (§2.2 Ex.2)", `Quick, test_midgard_end_to_end);
    ("GAP-scale fault transparency (§6.5)", `Slow, test_gap_scale_transparency);
    ("Fig 5 batching shape on machine", `Slow, test_fig5_shape_on_machine);
    ("Fig 5 model vs machine anchor", `Slow, test_fig5_model_vs_machine);
  ]
