open Ise_litmus
open Ise_model

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_expectations_hold () =
  List.iter
    (fun t ->
      List.iter
        (fun (model, expected, actual) ->
          let model_name =
            match model with Axiom.Sc -> "SC" | Axiom.Pc -> "PC" | Axiom.Wc -> "WC"
          in
          let show = function
            | Lit_test.Allowed -> "Allowed"
            | Lit_test.Forbidden -> "Forbidden"
          in
          check Alcotest.string
            (Printf.sprintf "%s under %s" t.Lit_test.name model_name)
            (show expected) (show actual))
        (Lit_test.check_expectations t))
    Library.all

let test_library_nonempty () =
  check Alcotest.bool "≥ 25 tests" true (List.length Library.all >= 25)

let test_library_names_unique () =
  let names = List.map (fun t -> t.Lit_test.name) Library.all in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  let t = Library.find "MP+fences" in
  check Alcotest.string "found" "MP+fences" t.Lit_test.name

let test_cond_holds () =
  let o = Outcome.make ~regs:[ ((1, 0), 1) ] ~mem:[ (0, 2) ] in
  check Alcotest.bool "matching cond" true
    (Lit_test.cond_holds [ Lit_test.Reg_is (1, 0, 1); Lit_test.Mem_is (0, 2) ] o);
  check Alcotest.bool "failing cond" false
    (Lit_test.cond_holds [ Lit_test.Reg_is (1, 0, 0) ] o)

let test_stores_of () =
  let stores = Lit_test.stores_of Library.mp in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "store indices" [ (0, 0); (0, 1) ] stores

let test_classify_mp_fenced () =
  let cats = Classify.classify Library.mp_fenced in
  check Alcotest.bool "barriers" true (List.mem Classify.Barriers cats);
  check Alcotest.bool "external rf" true
    (List.mem Classify.External_read_from cats)

let test_classify_corr () =
  let cats = Classify.classify Library.corr in
  check Alcotest.bool "po same location" true
    (List.mem Classify.Po_same_location cats)

let test_classify_amo () =
  let cats = Classify.classify Library.amo_add_add in
  check Alcotest.bool "preserved po" true (List.mem Classify.Preserved_po cats);
  check Alcotest.bool "coherence" true (List.mem Classify.Coherence_order cats)

let test_classify_deps () =
  let cats = Classify.classify Library.lb_data in
  check Alcotest.bool "dependencies" true (List.mem Classify.Dependencies cats)

let test_classify_internal_rf () =
  let t =
    Lit_test.make ~name:"internal-rf"
      [| [ Instr.Store (0, 1); Instr.Load (0, 0) ] |]
      []
  in
  check Alcotest.bool "internal rf" true
    (List.mem Classify.Internal_read_from (Classify.classify t))

let test_coverage_counts () =
  let cov = Classify.coverage Library.all in
  List.iter
    (fun (cat, n) ->
      check Alcotest.bool (Classify.name cat ^ " covered") true (n > 0))
    cov

(* Every Forbidden expectation must be explainable: the model produces
   either a happens-before cycle or unreachability, never a witness. *)
let test_forbidden_outcomes_have_cycles () =
  List.iter
    (fun t ->
      List.iter
        (fun (model, expected) ->
          if expected = Lit_test.Forbidden then begin
            let cfg = { Axiom.model; faults = Axiom.Precise } in
            (* find a candidate outcome matching the condition from the
               weakest fault-extended model, then explain it *)
            let weakest =
              Check.allowed
                ~faulting:(Lit_test.stores_of t)
                { Axiom.model = Axiom.Wc; faults = Axiom.Split_stream }
                t.Lit_test.threads
            in
            let targets =
              Outcome.Set.filter (Lit_test.cond_holds t.Lit_test.cond) weakest
            in
            Outcome.Set.iter
              (fun target ->
                match Check.explain cfg t.Lit_test.threads target with
                | Check.Forbidden_cycle cycle ->
                  Alcotest.(check bool)
                    (t.Lit_test.name ^ ": cycle closes")
                    true
                    (List.length cycle >= 2)
                | Check.Unreachable -> ()
                | Check.Allowed_by _ ->
                  Alcotest.fail
                    (Printf.sprintf "%s: expected Forbidden under %s"
                       t.Lit_test.name (Axiom.name cfg)))
              targets
          end)
        t.Lit_test.expect)
    Library.all

let test_coverage_every_category_generated () =
  let generated = Gen.generate_suite ~seed:99 ~count:300 Gen.default_params in
  List.iter
    (fun (cat, n) ->
      Alcotest.(check bool)
        (Classify.name cat ^ " well covered by generation")
        true (n >= 10))
    (Classify.coverage (Library.all @ generated))

let test_generator_deterministic () =
  let mk () = Gen.generate_suite ~seed:11 ~count:5 Gen.default_params in
  let names l = List.map (fun t -> t.Lit_test.name) l in
  check (Alcotest.list Alcotest.string) "same suite" (names (mk ())) (names (mk ()))

let test_generator_communicates () =
  let suite = Gen.generate_suite ~seed:3 ~count:20 Gen.default_params in
  check Alcotest.int "20 tests" 20 (List.length suite)

let prop_generated_enumerable =
  QCheck.Test.make ~name:"generated tests have bounded, consistent enumerations"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let t = Gen.generate rng Gen.default_params in
      let _, total, consistent =
        Check.allowed_with_stats Axiom.wc t.Lit_test.threads
      in
      total >= consistent && consistent > 0)

let prop_generated_pc_subset_wc =
  QCheck.Test.make ~name:"generated: allowed(PC) ⊆ allowed(WC)" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ise_util.Rng.create seed in
      let t = Gen.generate rng Gen.default_params in
      Check.subset Axiom.pc Axiom.wc t.Lit_test.threads)

let suite =
  [
    ("hand-written expectations hold", `Slow, test_expectations_hold);
    ("library non-empty", `Quick, test_library_nonempty);
    ("library names unique", `Quick, test_library_names_unique);
    ("find by name", `Quick, test_find);
    ("condition evaluation", `Quick, test_cond_holds);
    ("stores_of", `Quick, test_stores_of);
    ("classify MP+fences", `Quick, test_classify_mp_fenced);
    ("classify CoRR", `Quick, test_classify_corr);
    ("classify AMO", `Quick, test_classify_amo);
    ("classify dependencies", `Quick, test_classify_deps);
    ("classify internal rf", `Quick, test_classify_internal_rf);
    ("coverage counts nonzero", `Quick, test_coverage_counts);
    ("forbidden outcomes have cycles", `Slow, test_forbidden_outcomes_have_cycles);
    ("generated suite covers all categories", `Quick, test_coverage_every_category_generated);
    ("generator deterministic", `Quick, test_generator_deterministic);
    ("generator produces suite", `Quick, test_generator_communicates);
    qtest prop_generated_enumerable;
    qtest prop_generated_pc_subset_wc;
  ]
