open Types

type stream_mode = Split | Same

type obs = { l_b : value; l_a : value }

(* Micro-operations of the Figure 2 scenario.  Each is an atomic step
   on the shared state; the interleaving enumeration explores every
   order consistent with the per-core sequences. *)
type micro =
  | Detect
  | Put of loc * value  (** core 0 supplies a faulting store to its interface *)
  | Write_mem of loc * value  (** split stream: direct drain to memory *)
  | Get_apply  (** OS drains all visible interface entries, applies in order *)
  | Resolve
  | Load_obs of loc  (** an observer load; its value is recorded *)
  | Load_discard of loc  (** the re-executed L'(A); value unobserved *)

type state = {
  mutable mem_a : value;
  mutable mem_b : value;
  mutable queue : (loc * value) list;  (** core 0's interface, FIFO *)
  mutable observed : value list;  (** reversed observation list *)
}

let copy_state s =
  { mem_a = s.mem_a; mem_b = s.mem_b; queue = s.queue; observed = s.observed }

let read s = function 0 -> s.mem_a | _ -> s.mem_b
let write s l v = if l = 0 then s.mem_a <- v else s.mem_b <- v

let step s = function
  | Detect | Resolve -> ()
  | Put (l, v) -> s.queue <- s.queue @ [ (l, v) ]
  | Write_mem (l, v) -> write s l v
  | Get_apply ->
    List.iter (fun (l, v) -> write s l v) s.queue;
    s.queue <- []
  | Load_obs l -> s.observed <- read s l :: s.observed
  | Load_discard _ -> ()

(* All interleavings of two sequences, applied to the initial state;
   collect the observation lists. *)
let explore seq0 seq1 =
  let results = ref [] in
  let rec go s ops0 ops1 =
    match (ops0, ops1) with
    | [], [] -> results := List.rev s.observed :: !results
    | _ ->
      (match ops0 with
       | op :: rest ->
         let s' = copy_state s in
         step s' op;
         go s' rest ops1
       | [] -> ());
      (match ops1 with
       | op :: rest ->
         let s' = copy_state s in
         step s' op;
         go s' ops0 rest
       | [] -> ())
  in
  go { mem_a = 0; mem_b = 0; queue = [];  observed = [] } seq0 seq1;
  !results

let fig2_outcomes mode =
  let loc_a = 0 and loc_b = 1 in
  let store_b =
    match mode with
    | Split -> Write_mem (loc_b, 1)
    | Same -> Put (loc_b, 1)
  in
  (* Core 0: S(A,1) faults; after the fence, S(B,1) follows.  The
     store buffer drains S(A) to the interface; S(B) either drains to
     memory (split) or follows through the interface (same).  Core 0's
     own handler then GETs and resolves. *)
  let core0 = [ Detect; Put (loc_a, 1); store_b; Get_apply; Resolve ] in
  (* Core 1: L'(A) faults; handler GETs (racing with core 0's PUTs),
     resolves, re-executes L'(A), then performs the fenced observer
     loads L(B); L(A). *)
  let core1 =
    [ Detect; Get_apply; Resolve; Load_discard loc_a; Load_obs loc_b;
      Load_obs loc_a ]
  in
  let raw = explore core0 core1 in
  let outcomes =
    List.filter_map
      (function [ b; a ] -> Some { l_b = b; l_a = a } | _ -> None)
      raw
  in
  List.sort_uniq compare outcomes

let fig2_violates_pc mode =
  List.exists (fun o -> o.l_b = 1 && o.l_a = 0) (fig2_outcomes mode)

let all_store_subsets threads =
  let stores = ref [] in
  Array.iteri
    (fun tid instrs ->
      List.iteri
        (fun i instr ->
          match instr with
          | Instr.Store _ | Instr.Store_reg _ | Instr.Store_dep _ ->
            stores := (tid, i) :: !stores
          | _ -> ())
        instrs)
    threads;
  let stores = List.rev !stores in
  List.fold_left
    (fun subsets s -> subsets @ List.map (fun sub -> s :: sub) subsets)
    [ [] ] stores

let same_stream_preserves cfg threads =
  let base = Check.allowed cfg threads in
  List.for_all
    (fun faulting ->
      let faulty =
        Check.allowed ~faulting (Axiom.with_faults Axiom.Same_stream cfg) threads
      in
      Outcome.Set.equal base faulty)
    (all_store_subsets threads)

let split_stream_weakens cfg threads =
  let base = Check.allowed cfg threads in
  List.for_all
    (fun faulting ->
      let faulty =
        Check.allowed ~faulting (Axiom.with_faults Axiom.Split_stream cfg)
          threads
      in
      Outcome.Set.subset base faulty)
    (all_store_subsets threads)
