lib/model/enum.mli: Event Exec Seq
