lib/model/event.ml: Array Format Hashtbl Instr List Rel Types
