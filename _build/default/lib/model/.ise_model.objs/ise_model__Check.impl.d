lib/model/check.ml: Array Axiom Enum Event Exec Format List Option Outcome Rel Seq Types
