lib/model/rel.mli:
