lib/model/axiom.mli: Exec Rel
