lib/model/enum.ml: Array Event Exec Hashtbl List Rel Seq
