lib/model/event.mli: Format Instr Rel Types
