lib/model/instr.mli: Format Types
