lib/model/outcome.mli: Format Set Types
