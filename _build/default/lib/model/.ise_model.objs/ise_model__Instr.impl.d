lib/model/instr.ml: Format Types
