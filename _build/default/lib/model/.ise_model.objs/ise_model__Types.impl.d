lib/model/types.ml: Format
