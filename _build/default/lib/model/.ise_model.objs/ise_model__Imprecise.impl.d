lib/model/imprecise.ml: Array Axiom Check Instr List Outcome Types
