lib/model/rel.ml: Array Bytes List Queue
