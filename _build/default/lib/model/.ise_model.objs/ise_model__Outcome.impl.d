lib/model/outcome.ml: Format List Set Stdlib Types
