lib/model/exec.mli: Event Format Outcome Rel Types
