lib/model/imprecise.mli: Axiom Instr Types
