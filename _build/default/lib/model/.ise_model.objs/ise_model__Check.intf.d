lib/model/check.mli: Axiom Instr Outcome Types
