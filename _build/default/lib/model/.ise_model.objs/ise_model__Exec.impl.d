lib/model/exec.ml: Array Event Format Hashtbl Outcome Rel Types
