lib/model/axiom.ml: Array Event Exec Rel
