open Types

type dir = R | W | F

type write_source =
  | Const of value
  | Of_reg of reg
  | Amo_swap of value
  | Amo_fetch_add of value

type t = {
  id : int;
  tid : tid;
  po_index : int;
  dir : dir;
  loc : loc option;
  dst : reg option;
  wsrc : write_source option;
  rmw_partner : int option;
  faulting : bool;
}

type graph = {
  events : t array;
  po : Rel.t;
  addr_dep : Rel.t;
  data_dep : Rel.t;
  ctrl_dep : Rel.t;
  nthreads : int;
  nlocs : int;
}

let is_read e = e.dir = R
let is_write e = e.dir = W
let is_fence e = e.dir = F
let is_init e = e.tid = -1

let same_loc a b =
  match (a.loc, b.loc) with Some x, Some y -> x = y | _ -> false

let pp ppf e =
  let loc = match e.loc with Some l -> loc_name l | None -> "-" in
  let kind =
    match e.dir with
    | R -> "R"
    | W -> if e.faulting then "W!" else "W"
    | F -> "F"
  in
  if is_init e then Format.fprintf ppf "e%d:init W%s" e.id loc
  else Format.fprintf ppf "e%d:T%d.%d %s%s" e.id e.tid e.po_index kind loc

let locs_of_program threads =
  let locs = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun i ->
         match Instr.loc_of i with
         | Some x -> Hashtbl.replace locs x ()
         | None -> ()))
    threads;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) locs [])

(* Builder that allocates events and records dependency edges. *)
type builder = {
  mutable acc : t list;
  mutable next_id : int;
  mutable dep_edges : (int * int) list list;
      (* [addr; data; ctrl] edge accumulators, reversed *)
}

let compile ?(faulting = []) threads =
  let locs = locs_of_program threads in
  let nlocs = match List.rev locs with [] -> 0 | x :: _ -> x + 1 in
  let b = { acc = []; next_id = 0; dep_edges = [ []; []; [] ] } in
  let fresh ?dst ?wsrc ?rmw_partner ?(flt = false) ~tid ~po_index dir loc =
    let e =
      { id = b.next_id; tid; po_index; dir; loc; dst; wsrc; rmw_partner;
        faulting = flt }
    in
    b.next_id <- b.next_id + 1;
    b.acc <- e :: b.acc;
    e
  in
  let add_edge which pair =
    b.dep_edges <-
      List.mapi (fun i l -> if i = which then pair :: l else l) b.dep_edges
  in
  (* Init writes first so their ids are the smallest. *)
  List.iter
    (fun x ->
      ignore (fresh ~tid:(-1) ~po_index:(-1) ~wsrc:(Const 0) W (Some x)))
    locs;
  let po_pairs = ref [] in
  Array.iteri
    (fun tid instrs ->
      (* reg -> event id of the read that last defined it *)
      let reg_def : (reg, int) Hashtbl.t = Hashtbl.create 8 in
      (* accumulated control sources: read events guarding later code *)
      let ctrl_sources = ref [] in
      let thread_events = ref [] in
      let is_faulting po_index = List.mem (tid, po_index) faulting in
      List.iteri
        (fun po_index instr ->
          let flt = is_faulting po_index in
          let dep_on_reg which r target_id =
            match Hashtbl.find_opt reg_def r with
            | Some src -> add_edge which (src, target_id)
            | None -> ()
          in
          let emit_ctrl target_id =
            List.iter (fun src -> add_edge 2 (src, target_id)) !ctrl_sources
          in
          let record e = thread_events := e.id :: !thread_events in
          (match instr with
           | Instr.Load (r, x) ->
             let e = fresh ~tid ~po_index ~dst:r R (Some x) in
             emit_ctrl e.id;
             Hashtbl.replace reg_def r e.id;
             record e
           | Instr.Load_dep (r, x, rdep) ->
             let e = fresh ~tid ~po_index ~dst:r R (Some x) in
             dep_on_reg 0 rdep e.id;
             emit_ctrl e.id;
             Hashtbl.replace reg_def r e.id;
             record e
           | Instr.Store (x, v) ->
             let e = fresh ~tid ~po_index ~wsrc:(Const v) ~flt W (Some x) in
             emit_ctrl e.id;
             record e
           | Instr.Store_reg (x, r) ->
             let e = fresh ~tid ~po_index ~wsrc:(Of_reg r) ~flt W (Some x) in
             dep_on_reg 1 r e.id;
             emit_ctrl e.id;
             record e
           | Instr.Store_dep (x, v, rdep) ->
             let e = fresh ~tid ~po_index ~wsrc:(Const v) ~flt W (Some x) in
             dep_on_reg 0 rdep e.id;
             emit_ctrl e.id;
             record e
           | Instr.Fence ->
             let e = fresh ~tid ~po_index F None in
             record e
           | Instr.Ctrl r ->
             (match Hashtbl.find_opt reg_def r with
              | Some src ->
                if not (List.mem src !ctrl_sources) then
                  ctrl_sources := src :: !ctrl_sources
              | None -> ())
           | Instr.Amo (r, x, v) ->
             let rd = fresh ~tid ~po_index ~dst:r R (Some x) in
             let wr =
               fresh ~tid ~po_index ~wsrc:(Amo_swap v) ~rmw_partner:rd.id ~flt W
                 (Some x)
             in
             let rd = { rd with rmw_partner = Some wr.id } in
             b.acc <-
               List.map (fun e -> if e.id = rd.id then rd else e) b.acc;
             emit_ctrl rd.id;
             emit_ctrl wr.id;
             Hashtbl.replace reg_def r rd.id;
             record rd;
             record wr
           | Instr.Amo_add (r, x, v) ->
             let rd = fresh ~tid ~po_index ~dst:r R (Some x) in
             let wr =
               fresh ~tid ~po_index ~wsrc:(Amo_fetch_add v) ~rmw_partner:rd.id
                 ~flt W (Some x)
             in
             let rd = { rd with rmw_partner = Some wr.id } in
             b.acc <-
               List.map (fun e -> if e.id = rd.id then rd else e) b.acc;
             emit_ctrl rd.id;
             emit_ctrl wr.id;
             Hashtbl.replace reg_def r rd.id;
             record rd;
             record wr))
        instrs;
      (* program order: all earlier-to-later pairs within the thread *)
      let ids = List.rev !thread_events in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
          List.iter (fun y -> po_pairs := (x, y) :: !po_pairs) rest;
          pairs rest
      in
      pairs ids)
    threads;
  let events = Array.of_list (List.rev b.acc) in
  let n = Array.length events in
  Array.iteri (fun i e -> assert (e.id = i)) events;
  let po = Rel.of_list n !po_pairs in
  let edges which =
    Rel.of_list n (List.nth b.dep_edges which)
  in
  {
    events;
    po;
    addr_dep = edges 0;
    data_dep = edges 1;
    ctrl_dep = edges 2;
    nthreads = Array.length threads;
    nlocs;
  }
