(** Exhaustive enumeration of candidate executions.

    For every read the enumerator tries every same-location write
    (including the init write) as a reads-from source, and for every
    location it tries every linearisation of the location's writes as
    the coherence order.  Candidates that violate value well-formedness
    or RMW atomicity are dropped by {!Exec.make}.  Litmus-scale
    programs keep the space tiny. *)

val candidates : Event.graph -> Exec.t Seq.t
(** All well-formed candidate executions (not yet filtered by any
    consistency axiom). *)

val count : Event.graph -> int
(** Number of well-formed candidates (forces the sequence). *)
