(** Observable outcome of an execution: final register and memory
    values.  Outcomes are the currency of litmus testing — the model
    enumerates the *allowed* set, the operational machine produces
    *observed* ones, and the pass criterion is observed ⊆ allowed. *)

open Types

type t = {
  regs : ((tid * reg) * value) list;  (** sorted by key *)
  mem : (loc * value) list;  (** sorted by location *)
}

val make : regs:((tid * reg) * value) list -> mem:(loc * value) list -> t
(** Sorts and deduplicates the bindings into canonical form. *)

val reg : t -> tid -> reg -> value
(** Final register value; [0] if never written. *)

val mem_value : t -> loc -> value
(** Final memory value; [0] if the location is absent. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
