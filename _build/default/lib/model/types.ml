type tid = int
type loc = int
type value = int
type reg = int

let loc_name l =
  (* x, y, z, w, then v4, v5, ... *)
  match l with
  | 0 -> "x"
  | 1 -> "y"
  | 2 -> "z"
  | 3 -> "w"
  | n -> "v" ^ string_of_int n

let pp_loc ppf l = Format.pp_print_string ppf (loc_name l)
let reg_name r = "r" ^ string_of_int r
