let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Cartesian product of a list of choice lists, as a lazy sequence. *)
let rec product : 'a list list -> 'a list Seq.t = function
  | [] -> Seq.return []
  | choices :: rest ->
    Seq.concat_map
      (fun tail -> Seq.map (fun c -> c :: tail) (List.to_seq choices))
      (product rest)

let candidates (graph : Event.graph) =
  let events = graph.Event.events in
  let n = Array.length events in
  let reads =
    Array.to_list events |> List.filter Event.is_read |> List.map (fun e -> e.Event.id)
  in
  let writes_for rd =
    Array.to_list events
    |> List.filter (fun w -> Event.is_write w && Event.same_loc w events.(rd))
    |> List.map (fun w -> w.Event.id)
  in
  let locs = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      if Event.is_write e && not (Event.is_init e) then
        match e.Event.loc with
        | Some l ->
          Hashtbl.replace locs l (e.Event.id :: (try Hashtbl.find locs l with Not_found -> []))
        | None -> ())
    events;
  let init_of_loc l =
    let found = ref (-1) in
    Array.iter
      (fun e ->
        if Event.is_init e && e.Event.loc = Some l then found := e.Event.id)
      events;
    !found
  in
  let loc_orders =
    Hashtbl.fold
      (fun l ws acc -> (init_of_loc l, permutations ws) :: acc)
      locs []
  in
  let rf_choices = product (List.map writes_for reads) in
  let co_choices = product (List.map snd loc_orders) in
  let inits = List.map fst loc_orders in
  Seq.concat_map
    (fun rf_assignment ->
      let rf = Array.make n (-1) in
      List.iter2 (fun rd w -> rf.(rd) <- w) reads rf_assignment;
      Seq.filter_map
        (fun co_assignment ->
          let co = Rel.create n in
          List.iter2
            (fun init order ->
              (* init is co-before everything; then the permutation
                 order, with all transitive pairs added. *)
              let chain = if init >= 0 then init :: order else order in
              let rec pairs = function
                | [] -> ()
                | x :: rest ->
                  List.iter (fun y -> Rel.add co x y) rest;
                  pairs rest
              in
              pairs chain)
            inits co_assignment;
          Exec.make graph ~rf ~co)
        co_choices)
    rf_choices

let count graph = Seq.fold_left (fun acc _ -> acc + 1) 0 (candidates graph)
