(** Memory events of a candidate execution.

    A litmus program is compiled to a set of events: one init write per
    location (thread [-1]), one read and/or write per memory
    instruction (an AMO yields a read-write pair), and one fence event
    per fence.  Dependency edges (address, data, control) are computed
    syntactically during compilation by tracking register definitions,
    and the per-thread program order is returned as a relation. *)

open Types

type dir = R | W | F

type write_source =
  | Const of value  (** immediate store or init value *)
  | Of_reg of reg  (** store of a register value *)
  | Amo_swap of value  (** RMW write: the swapped-in constant *)
  | Amo_fetch_add of value  (** RMW write: loaded value + constant *)

type t = {
  id : int;
  tid : tid;  (** [-1] for init writes *)
  po_index : int;  (** position within the thread; [-1] for init *)
  dir : dir;
  loc : loc option;  (** [None] for fences *)
  dst : reg option;  (** destination register of a read *)
  wsrc : write_source option;  (** how a write's value is produced *)
  rmw_partner : int option;  (** the paired event of an AMO *)
  faulting : bool;  (** store marked as generating an imprecise exception *)
}

type graph = {
  events : t array;
  po : Rel.t;  (** program order (transitive, intra-thread) *)
  addr_dep : Rel.t;  (** load → event whose address depends on it *)
  data_dep : Rel.t;  (** load → store whose data depends on it *)
  ctrl_dep : Rel.t;  (** load → event control-dependent on it *)
  nthreads : int;
  nlocs : int;
}

val compile : ?faulting:(tid * int) list -> Instr.t list array -> graph
(** [compile ~faulting threads] builds the event graph.  [faulting]
    lists [(tid, po_index)] pairs of store instructions that should be
    marked as faulting (the imprecise-exception extension, §4.5).
    Instructions at a faulting index must be stores. *)

val is_read : t -> bool
val is_write : t -> bool
val is_fence : t -> bool
val is_init : t -> bool
val same_loc : t -> t -> bool
val pp : Format.formatter -> t -> unit
