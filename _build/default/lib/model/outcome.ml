open Types

type t = {
  regs : ((tid * reg) * value) list;
  mem : (loc * value) list;
}

let make ~regs ~mem =
  let dedup_sorted cmp l =
    let sorted = List.sort cmp l in
    let rec go = function
      | a :: b :: rest when cmp a b = 0 -> go (b :: rest)
      | a :: rest -> a :: go rest
      | [] -> []
    in
    go sorted
  in
  {
    regs = dedup_sorted (fun (k1, _) (k2, _) -> compare k1 k2) regs;
    mem = dedup_sorted (fun (k1, _) (k2, _) -> compare k1 k2) mem;
  }

let reg t tid r =
  match List.assoc_opt (tid, r) t.regs with Some v -> v | None -> 0

let mem_value t l =
  match List.assoc_opt l t.mem with Some v -> v | None -> 0

let compare a b =
  match Stdlib.compare a.regs b.regs with
  | 0 -> Stdlib.compare a.mem b.mem
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  let pp_reg ppf ((tid, r), v) =
    Format.fprintf ppf "%d:%s=%d" tid (reg_name r) v
  in
  let pp_mem ppf (l, v) = Format.fprintf ppf "%s=%d" (loc_name l) v in
  Format.fprintf ppf "{%a | %a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_reg)
    t.regs
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_mem)
    t.mem

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
