(** Shared base types of the memory-model formalism (paper §4.2).

    Litmus-level locations and values are small abstract integers; the
    operational simulator maps them onto real cache-line addresses when
    a test is lowered onto the machine. *)

type tid = int
(** Hardware thread (core) identifier. *)

type loc = int
(** Memory location identifier (one per distinct address in a test). *)

type value = int
(** Values stored/loaded. [0] is the implicit initial value. *)

type reg = int
(** Per-thread register index. *)

val pp_loc : Format.formatter -> loc -> unit
(** Locations print as [x], [y], [z], … for litmus-style output. *)

val loc_name : loc -> string
val reg_name : reg -> string
