open Types

type t =
  | Load of reg * loc
  | Load_dep of reg * loc * reg
  | Store of loc * value
  | Store_reg of loc * reg
  | Store_dep of loc * value * reg
  | Fence
  | Ctrl of reg
  | Amo of reg * loc * value
  | Amo_add of reg * loc * value

let uses = function
  | Load _ -> []
  | Load_dep (_, _, rdep) -> [ rdep ]
  | Store _ -> []
  | Store_reg (_, r) -> [ r ]
  | Store_dep (_, _, rdep) -> [ rdep ]
  | Fence -> []
  | Ctrl r -> [ r ]
  | Amo _ | Amo_add _ -> []

let defs = function
  | Load (r, _) | Load_dep (r, _, _) | Amo (r, _, _) | Amo_add (r, _, _) -> Some r
  | Store _ | Store_reg _ | Store_dep _ | Fence | Ctrl _ -> None

let loc_of = function
  | Load (_, x)
  | Load_dep (_, x, _)
  | Store (x, _)
  | Store_reg (x, _)
  | Store_dep (x, _, _)
  | Amo (_, x, _)
  | Amo_add (_, x, _) -> Some x
  | Fence | Ctrl _ -> None

let is_memory i = match i with Fence | Ctrl _ -> false | _ -> true

let pp ppf = function
  | Load (r, x) -> Format.fprintf ppf "%s := *%s" (reg_name r) (loc_name x)
  | Load_dep (r, x, d) ->
    Format.fprintf ppf "%s := *(%s + 0*%s)" (reg_name r) (loc_name x) (reg_name d)
  | Store (x, v) -> Format.fprintf ppf "*%s := %d" (loc_name x) v
  | Store_reg (x, r) -> Format.fprintf ppf "*%s := %s" (loc_name x) (reg_name r)
  | Store_dep (x, v, d) ->
    Format.fprintf ppf "*(%s + 0*%s) := %d" (loc_name x) (reg_name d) v
  | Fence -> Format.fprintf ppf "fence"
  | Ctrl r -> Format.fprintf ppf "if (%s) {}" (reg_name r)
  | Amo (r, x, v) -> Format.fprintf ppf "%s := swap(*%s, %d)" (reg_name r) (loc_name x) v
  | Amo_add (r, x, v) ->
    Format.fprintf ppf "%s := fetch_add(*%s, %d)" (reg_name r) (loc_name x) v
