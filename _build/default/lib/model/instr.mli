(** Litmus-program instruction AST.

    A program is a list of threads; each thread is a list of
    instructions executed in program order.  The AST is deliberately
    small — just enough to express the ordering relations of the
    paper's Table 6: plain loads/stores, stores of register values
    (data dependency), loads through a dependent address (address
    dependency), control dependencies, fences, and atomic
    read-modify-writes (covering RISC-V AMO and LR/SC pairs at the
    model level). *)

open Types

type t =
  | Load of reg * loc
      (** [Load (r, x)]: r := *x *)
  | Load_dep of reg * loc * reg
      (** [Load_dep (r, x, rdep)]: r := *(x + 0*rdep) — an address
          dependency on [rdep] that does not change the address. *)
  | Store of loc * value
      (** [Store (x, v)]: *x := v (immediate data). *)
  | Store_reg of loc * reg
      (** [Store_reg (x, r)]: *x := r — data dependency on [r]. *)
  | Store_dep of loc * value * reg
      (** [Store_dep (x, v, rdep)]: *x := v through an address
          dependency on [rdep]. *)
  | Fence
      (** Full memory barrier (the paper's F). *)
  | Ctrl of reg
      (** Conditional branch on [reg]; orders subsequent instructions
          by a control dependency (the branch itself emits no memory
          event). *)
  | Amo of reg * loc * value
      (** [Amo (r, x, v)]: atomically r := *x; *x := v (swap). *)
  | Amo_add of reg * loc * value
      (** [Amo_add (r, x, v)]: atomically r := *x; *x := r + v. *)

val uses : t -> reg list
(** Registers read by the instruction (for dependency edges). *)

val defs : t -> reg option
(** Register written by the instruction, if any. *)

val loc_of : t -> loc option
(** Memory location accessed, if any. *)

val is_memory : t -> bool
val pp : Format.formatter -> t -> unit
