(** Operation-level formalism of imprecise store exceptions (§4.4-4.6).

    The paper extends the memory-order vocabulary with five operations

    {v DETECT <m PUT(S(A)) <m GET <m S_OS(A) <m RESOLVE v}

    and shows that the *split-stream* treatment (non-faulting stores
    drain directly to memory while faulting stores travel through the
    architectural interface) admits a race between one core's
    [PUT(S(A))] and another core's [GET] that produces a PC violation
    (Figure 2a), while the *same-stream* treatment (younger
    non-faulting stores follow faulting stores through the interface)
    does not (Figure 2b).

    This module makes that argument executable: it exhaustively
    enumerates all interleavings of the micro-operations of the
    two-core scenario and reports which observer outcomes are
    reachable. *)

open Types

type stream_mode = Split | Same

type obs = { l_b : value; l_a : value }
(** The two observer loads of the Figure 2 program: Core 1's [L(B)]
    and [L(A)] (executed in that order, fenced). *)

val fig2_outcomes : stream_mode -> obs list
(** Reachable observer outcomes over all interleavings of the Figure 2
    scenario: Core 0 runs [S(A,1); fence; S(B,1)] where [S(A)] faults;
    Core 1 takes its own imprecise exception, handles it (its GET races
    with Core 0's PUT), resolves, and then reads [B] then [A]. *)

val fig2_violates_pc : stream_mode -> bool
(** True iff the outcome [L(B)=1 ∧ L(A)=0] — the PC violation — is
    reachable. The paper's claim: [true] for [Split], [false] for
    [Same]. *)

(** {1 Proofs by enumeration}

    §4.6 proves the store-store rule of PC by case analysis; here we
    verify the theorems on concrete programs by exhaustive
    enumeration of candidate executions under the axioms of
    {!Axiom}. *)

val same_stream_preserves :
  Axiom.config -> Instr.t list array -> bool
(** For every subset of stores marked faulting, the same-stream
    configuration allows exactly the base model's outcomes. *)

val split_stream_weakens :
  Axiom.config -> Instr.t list array -> bool
(** For every subset of stores marked faulting, the split-stream
    configuration allows a superset of the base model's outcomes. *)

val all_store_subsets : Instr.t list array -> (tid * int) list list
(** Every subset of the program's stores, as faulting-markings. *)
