(** Kernel-side serialization state (§5.3-5.4).

    Models the Interrupt-Enable (IE) discipline: the IE bit is set
    automatically when an interrupt or imprecise store-exception
    handler is entered and when the kernel enters a non-interruptible
    critical section; deliveries arriving while IE is set are queued
    and delivered when the bit clears.  In user mode the bit is
    hard-wired to zero, so a pending imprecise exception always stops
    the OS from resuming the application. *)

type delivery = Interrupt of int | Imprecise_exception of int
(** The payload is the originating core. *)

type t

val create : unit -> t

val ie : t -> bool

val deliver : t -> delivery -> (delivery -> unit) -> bool
(** [deliver t d run] runs [d] immediately (setting IE for its
    duration is the caller's job via {!enter}/{!exit}) if IE is clear,
    otherwise queues it.  Returns whether it ran now. *)

val enter : t -> unit
(** Sets IE (handler entry or critical-section entry).
    @raise Failure if already set (recursive handlers are unsupported,
    §5.4). *)

val exit_and_drain : t -> (delivery -> unit) -> unit
(** Clears IE and synchronously runs any queued deliveries (each runs
    with IE set again). *)

val pending : t -> int
val delivered : t -> int
