open Ise_sim

type report = {
  completed : bool;
  data_correct : bool;
  kernel_exceptions : int;
  contained : bool;
}

let copy_to_user ~dst ~values =
  List.mapi
    (fun i v ->
      Sim_instr.St { addr = Sim_instr.addr (dst + (8 * i)); data = Sim_instr.Imm v })
    values
  @ [ Sim_instr.Fence ]

let return_to_user = [ Sim_instr.Fence ]

let run_copy_to_user ?(cfg = Config.default) ~dst ~values ~mark_faulting () =
  let stub = copy_to_user ~dst ~values @ return_to_user in
  let machine = Machine.create ~cfg ~programs:[| Sim_instr.of_list stub |] () in
  ignore (Handler.install machine);
  if mark_faulting then begin
    let p = ref dst in
    while !p < dst + (8 * List.length values) do
      Einject.set_faulting (Machine.einject machine) !p;
      p := !p + 4096
    done
  end;
  Machine.run machine;
  let trace = Machine.trace machine in
  let detects =
    List.length
      (List.filter
         (function Ise_core.Contract.Detect _ -> true | _ -> false)
         trace)
  in
  let resolves =
    List.length
      (List.filter
         (function Ise_core.Contract.Resolve _ -> true | _ -> false)
         trace)
  in
  let data_correct =
    List.for_all
      (fun (i, v) -> Machine.read_word machine (dst + (8 * i)) = v)
      (List.mapi (fun i v -> (i, v)) values)
  in
  {
    completed = true;
    data_correct;
    kernel_exceptions = detects;
    (* containment: the fences force every detected exception to be
       fully resolved before the stub can finish; an unresolved one
       would deadlock the final fence, so completion + balanced
       detect/resolve counts is the audit *)
    contained = detects = resolves;
  }
