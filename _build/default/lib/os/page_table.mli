(** A minimal per-process page table with demand paging.

    The OS substrate for classifying and resolving memory faults: a
    page is either present, absent-but-cheap (minor fault: lazy
    allocation / zero page), or absent-on-storage (major fault: an IO
    request must bring it in).  Resolution latencies follow §4.1's
    motivation: several µs for lazy allocation, tens of ms (here:
    configurable cycles) for demand paging. *)

type presence =
  | Present
  | Absent_minor  (** resolvable without IO *)
  | Absent_major  (** needs an IO request *)

type t

val create : page_bits:int -> t

val presence : t -> int -> presence
(** Presence of the page containing a byte address (default:
    [Present] for unknown pages). *)

val set_presence : t -> int -> presence -> unit

val resolve : t -> int -> [ `Was_present | `Minor | `Major ]
(** Marks the page present and reports what kind of fault resolving it
    was. *)

val minor_faults : t -> int
val major_faults : t -> int
val pages_mapped : t -> int
