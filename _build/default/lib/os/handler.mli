(** The imprecise store-exception handler (§5.3, §6.2).

    The reference OS implementation wired into the machine's hooks:

    - {b imprecise}: after exception dispatch, GET every faulting
      store from the core's FSB, resolve each fault (clear the EInject
      bit, or perform demand paging with batched IO for major faults),
      apply the stores to memory in interface order as OS stores
      (S_OS), RESOLVE, and resume the core.  Irrecoverable faults
      terminate the core and discard its faulting stores.
    - {b precise}: loads (and SC-mode stores) fault precisely; the
      handler resolves the fault and retries the access.

    Cycle accounting matches Figure 5's breakdown: the
    microarchitectural part is measured by the core (drain + flush);
    this module accounts the OS "apply" and "other" parts. *)

type resolve_policy =
  | Clear_einject
      (** minimal handler: mark the page non-faulting via the EInject
          [clr] register *)
  | Demand_paging of { table : Page_table.t; io_latency : int }
      (** resolve through a page table; major faults issue IO
          requests, batched per invocation (overlapped latencies) *)
  | Midgard_paging of
      { midgard : Ise_sim.Midgard.t; major_pct : int; io_latency : int }
      (** resolve late Midgard→physical translation faults (§2.2,
          Example 2) by establishing the mapping; [major_pct]% of pages
          need an IO request (deterministic by page number) *)

type config = {
  costs : Ise_core.Batch.cost_model;
  policy : resolve_policy;
}

val default_config : config

type stats = {
  mutable invocations : int;
  mutable stores_handled : int;
  mutable faulting_handled : int;  (** stores with a real exception code *)
  mutable apply_cycles : int;  (** resolving + applying faulting stores *)
  mutable other_cycles : int;  (** dispatch, context switch, misc, IO wait *)
  mutable io_requests : int;
  mutable precise_faults : int;
  mutable terminated_cores : int;
  batch_sizes : Ise_util.Stats.t;
}

val install : ?config:config -> Ise_sim.Machine.t -> stats
(** Builds the hooks, installs them on the machine, and returns the
    statistics record that the handler updates during the run. *)
