type presence =
  | Present
  | Absent_minor
  | Absent_major

type t = {
  page_bits : int;
  pages : (int, presence) Hashtbl.t;
  mutable minors : int;
  mutable majors : int;
}

let create ~page_bits = { page_bits; pages = Hashtbl.create 64; minors = 0; majors = 0 }

let vpn t addr = addr lsr t.page_bits

let presence t addr =
  match Hashtbl.find_opt t.pages (vpn t addr) with
  | Some p -> p
  | None -> Present

let set_presence t addr p = Hashtbl.replace t.pages (vpn t addr) p

let resolve t addr =
  let page = vpn t addr in
  match Hashtbl.find_opt t.pages page with
  | None | Some Present -> `Was_present
  | Some Absent_minor ->
    Hashtbl.replace t.pages page Present;
    t.minors <- t.minors + 1;
    `Minor
  | Some Absent_major ->
    Hashtbl.replace t.pages page Present;
    t.majors <- t.majors + 1;
    `Major

let minor_faults t = t.minors
let major_faults t = t.majors

let pages_mapped t =
  Hashtbl.fold (fun _ p acc -> if p = Present then acc + 1 else acc) t.pages 0
