lib/os/syscall.ml: Config Einject Handler Ise_core Ise_sim List Machine Sim_instr
