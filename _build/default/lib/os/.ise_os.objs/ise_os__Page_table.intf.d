lib/os/page_table.mli:
