lib/os/handler.mli: Ise_core Ise_sim Ise_util Page_table
