lib/os/page_table.ml: Hashtbl
