lib/os/kernel.ml: Queue
