lib/os/handler.ml: Einject Engine Hashtbl Ise_core Ise_model Ise_sim Ise_util List Machine Memsys Midgard Page_table
