lib/os/syscall.mli: Ise_sim
