lib/os/kernel.mli:
