type delivery = Interrupt of int | Imprecise_exception of int

type t = {
  mutable ie_bit : bool;
  queue : delivery Queue.t;
  mutable n_delivered : int;
}

let create () = { ie_bit = false; queue = Queue.create (); n_delivered = 0 }

let ie t = t.ie_bit

let enter t =
  if t.ie_bit then failwith "Kernel.enter: recursive handlers are not supported";
  t.ie_bit <- true

let deliver t d run =
  if t.ie_bit then begin
    Queue.add d t.queue;
    false
  end
  else begin
    enter t;
    t.n_delivered <- t.n_delivered + 1;
    run d;
    t.ie_bit <- false;
    true
  end

let exit_and_drain t run =
  t.ie_bit <- false;
  while (not t.ie_bit) && not (Queue.is_empty t.queue) do
    let d = Queue.pop t.queue in
    enter t;
    t.n_delivered <- t.n_delivered + 1;
    run d;
    t.ie_bit <- false
  done

let pending t = Queue.length t.queue
let delivered t = t.n_delivered
