(** Kernel-generated imprecise exceptions and their containment
    (§5.4).

    When the OS itself stores into memory that can fault imprecisely —
    e.g. [copy_to_user] into a buffer allocated from an accelerator
    region — the kernel issues a fence after the operation so any
    imprecise exceptions it caused are reported and handled before the
    kernel proceeds, and another fence before switching to user mode so
    no kernel exception leaks into the application. *)

type report = {
  completed : bool;  (** the syscall ran to completion *)
  data_correct : bool;  (** every byte landed in the user buffer *)
  kernel_exceptions : int;  (** imprecise exceptions taken inside the kernel *)
  contained : bool;
      (** every kernel exception was resolved before the containment
          fence completed (no exception outlived the syscall) *)
}

val copy_to_user :
  dst:int -> values:int list -> Ise_sim.Sim_instr.t list
(** The kernel stub: stores of [values] to the user buffer at [dst],
    followed by the containment fence. *)

val return_to_user : Ise_sim.Sim_instr.t list
(** The fence issued before switching to user mode. *)

val run_copy_to_user :
  ?cfg:Ise_sim.Config.t -> dst:int -> values:int list ->
  mark_faulting:bool -> unit -> report
(** Runs the kernel stub on a fresh machine with the reference handler
    installed, optionally marking the user buffer's pages faulting, and
    audits containment. *)
