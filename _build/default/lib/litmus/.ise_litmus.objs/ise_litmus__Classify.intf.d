lib/litmus/classify.mli: Lit_test
