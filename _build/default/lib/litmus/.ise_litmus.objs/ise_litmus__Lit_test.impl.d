lib/litmus/lit_test.ml: Array Axiom Check Format Instr Ise_model List Outcome
