lib/litmus/library.mli: Ise_model Lit_test
