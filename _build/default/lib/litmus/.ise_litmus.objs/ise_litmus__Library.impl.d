lib/litmus/library.ml: Axiom Instr Ise_model List Lit_test
