lib/litmus/classify.ml: Array Event Hashtbl Ise_model List Lit_test Rel
