lib/litmus/gen.mli: Ise_util Lit_test
