lib/litmus/lit_test.mli: Axiom Format Instr Ise_model Outcome
