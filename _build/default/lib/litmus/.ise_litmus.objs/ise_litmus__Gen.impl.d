lib/litmus/gen.ml: Array Hashtbl Instr Ise_model Ise_util List Lit_test Printf Rng
