lib/litmus/lit_run.mli: Ise_model Ise_sim Lit_test Outcome
