lib/litmus/lit_run.ml: Array Axiom Check Config Core Einject Hashtbl Instr Ise_core Ise_model Ise_os Ise_sim Ise_util List Lit_test Machine Memsys Outcome Rng Sim_instr Stdlib
