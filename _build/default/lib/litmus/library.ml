open Ise_model
open Lit_test

let x = 0
let y = 1
let z = 2

let st l v = Instr.Store (l, v)
let ld r l = Instr.Load (r, l)
let f = Instr.Fence

let all_models e = [ (Axiom.Sc, e); (Axiom.Pc, e); (Axiom.Wc, e) ]

let mp =
  make ~name:"MP"
    ~doc:"message passing, no fences: W→W / R→R reordering visible under WC"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1; st y 1 ]; [ ld 0 y; ld 1 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let mp_fenced =
  make ~name:"MP+fences"
    ~doc:"Figure 1: fenced message passing; the violation is forbidden everywhere"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; st y 1 ]; [ ld 0 y; f; ld 1 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let mp_fence_addr =
  make ~name:"MP+fence+addr"
    ~doc:"producer fence, consumer address dependency orders the loads"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; st y 1 ]; [ ld 0 y; Instr.Load_dep (1, x, 0) ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let mp_fence_data =
  make ~name:"S+fence+data"
    ~doc:"producer fence; consumer's data dependency orders load→store"
    ~expect:(all_models Forbidden)
    [| [ st x 2; f; st y 1 ]; [ ld 0 y; Instr.Store_reg (x, 0) ] |]
    (* final x=2 would order the dependent store before the fenced one *)
    [ Reg_is (1, 0, 1); Mem_is (x, 2) ]

let mp_fence_ctrl =
  make ~name:"MP+fence+ctrl"
    ~doc:"control dependency does not order load→load: still visible under WC"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1; f; st y 1 ]; [ ld 0 y; Instr.Ctrl 0; ld 1 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let sb =
  make ~name:"SB"
    ~doc:"store buffering (Dekker): the store buffer makes 0,0 visible"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Allowed); (Axiom.Wc, Allowed) ]
    [| [ st x 1; ld 0 y ]; [ st y 1; ld 1 x ] |]
    [ Reg_is (0, 0, 0); Reg_is (1, 1, 0) ]

let sb_fenced =
  make ~name:"SB+fences" ~doc:"fences drain the store buffer: 0,0 forbidden"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; ld 0 y ]; [ st y 1; f; ld 1 x ] |]
    [ Reg_is (0, 0, 0); Reg_is (1, 1, 0) ]

let lb =
  make ~name:"LB"
    ~doc:"load buffering: R→W reordering, visible only under WC"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ ld 0 x; st y 1 ]; [ ld 1 y; st x 1 ] |]
    [ Reg_is (0, 0, 1); Reg_is (1, 1, 1) ]

let lb_data =
  make ~name:"LB+datas"
    ~doc:"data dependencies forbid the load-buffering cycle under WC"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; Instr.Store_reg (y, 0) ]; [ ld 1 y; Instr.Store_reg (x, 1) ] |]
    [ Reg_is (0, 0, 1); Reg_is (1, 1, 1) ]

let lb_ctrl =
  make ~name:"LB+ctrls"
    ~doc:"control dependencies to stores forbid the load-buffering cycle"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; Instr.Ctrl 0; st y 1 ]; [ ld 1 y; Instr.Ctrl 1; st x 1 ] |]
    [ Reg_is (0, 0, 1); Reg_is (1, 1, 1) ]

let iriw =
  make ~name:"IRIW"
    ~doc:"independent reads of independent writes; needs R→R order to forbid"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1 ]; [ st y 1 ];
       [ ld 0 x; ld 1 y ]; [ ld 2 y; ld 3 x ] |]
    [ Reg_is (2, 0, 1); Reg_is (2, 1, 0); Reg_is (3, 2, 1); Reg_is (3, 3, 0) ]

let iriw_fenced =
  make ~name:"IRIW+fences" ~doc:"fenced IRIW forbidden under all models"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ st y 1 ];
       [ ld 0 x; f; ld 1 y ]; [ ld 2 y; f; ld 3 x ] |]
    [ Reg_is (2, 0, 1); Reg_is (2, 1, 0); Reg_is (3, 2, 1); Reg_is (3, 3, 0) ]

let wrc =
  make ~name:"WRC"
    ~doc:"write-to-read causality without dependencies"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1 ]; [ ld 0 x; st y 1 ]; [ ld 1 y; ld 2 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (2, 1, 1); Reg_is (2, 2, 0) ]

let wrc_deps =
  make ~name:"WRC+deps"
    ~doc:"data dependency on the middle thread, address dep on the reader"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ ld 0 x; Instr.Store_reg (y, 0) ];
       [ ld 1 y; Instr.Load_dep (2, x, 1) ] |]
    [ Reg_is (1, 0, 1); Reg_is (2, 1, 1); Reg_is (2, 2, 0) ]

let s_test =
  make ~name:"S"
    ~doc:"W→W then R→W: coherence-final value reveals the reordering"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 2; st y 1 ]; [ ld 0 y; st x 1 ] |]
    [ Reg_is (1, 0, 1); Mem_is (x, 2) ]

let two_plus_two_w =
  make ~name:"2+2W"
    ~doc:"two writers to two locations; W→W order forbids the cross pattern"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1; st y 2 ]; [ st y 1; st x 2 ] |]
    [ Mem_is (x, 1); Mem_is (y, 1) ]

let corr =
  make ~name:"CoRR" ~doc:"coherent read-read: later read cannot go back in time"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ ld 0 x; ld 1 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let coww =
  make ~name:"CoWW" ~doc:"coherent write-write: program order is coherence order"
    ~expect:(all_models Forbidden)
    [| [ st x 1; st x 2 ] |]
    [ Mem_is (x, 1) ]

let corw1 =
  make ~name:"CoRW1" ~doc:"read cannot observe a po-later write to the same address"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; st x 1 ] |]
    [ Reg_is (0, 0, 1) ]

let cowr =
  make ~name:"CoWR"
    ~doc:"read after write to same address must not read an older external write"
    ~expect:(all_models Forbidden)
    [| [ st x 2; ld 0 x ]; [ st x 1 ] |]
    [ Reg_is (0, 0, 1); Mem_is (x, 2) ]

let corw2 =
  make ~name:"CoRW2" ~doc:"read then write, racing external write"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; st x 2 ]; [ st x 1 ] |]
    [ Reg_is (0, 0, 2) ]

let amo_add_add =
  make ~name:"AMO-add-add" ~doc:"parallel fetch-add never loses an update"
    ~expect:(all_models Forbidden)
    [| [ Instr.Amo_add (0, x, 1) ]; [ Instr.Amo_add (0, x, 1) ] |]
    [ Mem_is (x, 1) ]

let amo_swap_obs =
  make ~name:"AMO-swap-obs" ~doc:"swap observes exactly one of the orders"
    ~expect:(all_models Forbidden)
    [| [ Instr.Amo (0, x, 1) ]; [ Instr.Amo (1, x, 2) ] |]
    [ Reg_is (0, 0, 2); Reg_is (1, 1, 1) ]
(* both swaps reading the other's value would be a coherence cycle *)

let mp_amo =
  make ~name:"MP+amo"
    ~doc:"flag set by an AMO; consumer ordering still needs deps/fences in WC"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Wc, Allowed) ]
    [| [ st x 1; Instr.Amo (0, y, 1) ]; [ ld 0 y; ld 1 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let sb_three =
  make ~name:"SB3"
    ~doc:"three-thread store-buffering ring"
    ~expect:[ (Axiom.Sc, Forbidden); (Axiom.Pc, Allowed); (Axiom.Wc, Allowed) ]
    [| [ st x 1; ld 0 y ]; [ st y 1; ld 1 z ]; [ st z 1; ld 2 x ] |]
    [ Reg_is (0, 0, 0); Reg_is (1, 1, 0); Reg_is (2, 2, 0) ]

let isa2 =
  make ~name:"ISA2"
    ~doc:"three-thread transitive message passing with deps"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; st y 1 ];
       [ ld 0 y; Instr.Store_reg (z, 0) ];
       [ ld 1 z; Instr.Load_dep (2, x, 1) ] |]
    [ Reg_is (1, 0, 1); Reg_is (2, 1, 1); Reg_is (2, 2, 0) ]

let r_test =
  make ~name:"R"
    ~doc:"write-write then write-read across threads; coherence-final reveals order"
    ~expect:[ (Axiom.Sc, Forbidden) ]
    [| [ st x 1; st y 1 ]; [ st y 2; ld 0 x ] |]
    [ Reg_is (1, 0, 0); Mem_is (y, 2) ]

let r_fenced =
  make ~name:"R+fences" ~doc:"fenced R is forbidden under every model"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; st y 1 ]; [ st y 2; f; ld 0 x ] |]
    [ Reg_is (1, 0, 0); Mem_is (y, 2) ]

let s_fenced =
  make ~name:"S+fences" ~doc:"fenced S is forbidden under every model"
    ~expect:(all_models Forbidden)
    [| [ st x 2; f; st y 1 ]; [ ld 0 y; f; st x 1 ] |]
    [ Reg_is (1, 0, 1); Mem_is (x, 2) ]

let two_plus_two_w_fenced =
  make ~name:"2+2W+fences" ~doc:"fences forbid the cross write pattern"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; st y 2 ]; [ st y 1; f; st x 2 ] |]
    [ Mem_is (x, 1); Mem_is (y, 1) ]

let lb_fenced =
  make ~name:"LB+fences" ~doc:"fences forbid load buffering"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; f; st y 1 ]; [ ld 1 y; f; st x 1 ] |]
    [ Reg_is (0, 0, 1); Reg_is (1, 1, 1) ]

let lb_addr =
  make ~name:"LB+addrs" ~doc:"address dependencies forbid load buffering"
    ~expect:(all_models Forbidden)
    [| [ ld 0 x; Instr.Store_dep (y, 1, 0) ];
       [ ld 1 y; Instr.Store_dep (x, 1, 1) ] |]
    [ Reg_is (0, 0, 1); Reg_is (1, 1, 1) ]

let rwc =
  make ~name:"RWC" ~doc:"read-to-write causality, unfenced"
    ~expect:[ (Axiom.Sc, Forbidden) ]
    [| [ st x 1 ]; [ ld 0 x; ld 1 y ]; [ st y 1; ld 2 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0); Reg_is (2, 2, 0) ]

let rwc_fenced =
  make ~name:"RWC+fences" ~doc:"fenced RWC is forbidden everywhere"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ ld 0 x; f; ld 1 y ]; [ st y 1; f; ld 2 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0); Reg_is (2, 2, 0) ]

let wrc_fences =
  make ~name:"WRC+fences" ~doc:"fences on both observer threads forbid WRC"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ ld 0 x; f; st y 1 ]; [ ld 1 y; f; ld 2 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (2, 1, 1); Reg_is (2, 2, 0) ]

let iriw_addrs =
  make ~name:"IRIW+addrs"
    ~doc:"address dependencies order each reader's loads: forbidden"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ st y 1 ];
       [ ld 0 x; Instr.Load_dep (1, y, 0) ];
       [ ld 2 y; Instr.Load_dep (3, x, 2) ] |]
    [ Reg_is (2, 0, 1); Reg_is (2, 1, 0); Reg_is (3, 2, 1); Reg_is (3, 3, 0) ]

let sb_amo =
  make ~name:"SB+amos" ~doc:"Dekker with atomic stores, unfenced"
    ~expect:[ (Axiom.Sc, Forbidden) ]
    [| [ Instr.Amo (8, x, 1); ld 0 y ]; [ Instr.Amo (9, y, 1); ld 1 x ] |]
    [ Reg_is (0, 0, 0); Reg_is (1, 1, 0) ]

let corr3 =
  make ~name:"CoRR3" ~doc:"three same-address reads never go back in time"
    ~expect:(all_models Forbidden)
    [| [ st x 1 ]; [ ld 0 x; ld 1 x; ld 2 x ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 1); Reg_is (1, 2, 0) ]

let coww_chain =
  make ~name:"CoWW-chain" ~doc:"a chain of same-address writes is kept in order"
    ~expect:(all_models Forbidden)
    [| [ st x 1; st x 2; st x 3 ] |]
    [ Mem_is (x, 2) ]

let amo_release_chain =
  make ~name:"AMO-chain"
    ~doc:"fetch-adds on one thread accumulate (atomicity + po-loc)"
    ~expect:(all_models Forbidden)
    [| [ Instr.Amo_add (0, x, 1); Instr.Amo_add (1, x, 1) ] |]
    [ Mem_is (x, 1) ]

let mp_swap_flag =
  make ~name:"MP+swap"
    ~doc:"flag published by a fenced swap; reader uses an address dependency"
    ~expect:(all_models Forbidden)
    [| [ st x 1; f; Instr.Amo (8, y, 1) ];
       [ ld 0 y; Instr.Load_dep (1, x, 0) ] |]
    [ Reg_is (1, 0, 1); Reg_is (1, 1, 0) ]

let all =
  [ mp; mp_fenced; mp_fence_addr; mp_fence_data; mp_fence_ctrl;
    sb; sb_fenced; lb; lb_data; lb_ctrl; iriw; iriw_fenced;
    wrc; wrc_deps; s_test; two_plus_two_w;
    corr; coww; corw1; cowr; corw2;
    amo_add_add; amo_swap_obs; mp_amo; sb_three; isa2;
    r_test; r_fenced; s_fenced; two_plus_two_w_fenced;
    lb_fenced; lb_addr; rwc; rwc_fenced; wrc_fences; iriw_addrs;
    sb_amo; corr3; coww_chain; amo_release_chain; mp_swap_flag ]

let find name = List.find (fun t -> t.name = name) all
