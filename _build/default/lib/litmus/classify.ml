open Ise_model

type category =
  | Dependencies
  | Po_same_location
  | Preserved_po
  | External_read_from
  | Internal_read_from
  | Coherence_order
  | From_read_order
  | Barriers

let all_categories =
  [ Dependencies; Po_same_location; Preserved_po; External_read_from;
    Internal_read_from; Coherence_order; From_read_order; Barriers ]

let name = function
  | Dependencies -> "Dependencies"
  | Po_same_location -> "Program order (same location)"
  | Preserved_po -> "Preserved program order"
  | External_read_from -> "External read-from order"
  | Internal_read_from -> "Internal read-from order"
  | Coherence_order -> "Coherence order"
  | From_read_order -> "From-read order"
  | Barriers -> "Barriers"

let description = function
  | Dependencies -> "Register dependencies for addr, data, and ctrl"
  | Po_same_location -> "Rd-Rd or Wr-Wr to the same address from the same core"
  | Preserved_po -> "Instruction pairs maintained in program order (Atomic, LR/SC)"
  | External_read_from -> "Wr-Rd to the same address from different cores"
  | Internal_read_from -> "Wr-Rd to the same address from the same core"
  | Coherence_order -> "Wr-Wr total order to the same address"
  | From_read_order -> "Rd-Wr to the same address"
  | Barriers -> "Ordering imposed by barriers"

let classify (t : Lit_test.t) =
  let graph = Event.compile t.Lit_test.threads in
  let events = graph.Event.events in
  let has p =
    let found = ref false in
    Array.iter (fun a ->
        Array.iter (fun b -> if a.Event.id <> b.Event.id && p a b then found := true)
          events)
      events;
    !found
  in
  let non_init e = not (Event.is_init e) in
  let cats = ref [] in
  let add c = if not (List.mem c !cats) then cats := c :: !cats in
  if
    Rel.cardinal graph.Event.addr_dep > 0
    || Rel.cardinal graph.Event.data_dep > 0
    || Rel.cardinal graph.Event.ctrl_dep > 0
  then add Dependencies;
  if
    has (fun a b ->
        Rel.mem graph.Event.po a.Event.id b.Event.id
        && Event.same_loc a b
        && a.Event.rmw_partner <> Some b.Event.id
        && ((Event.is_read a && Event.is_read b)
           || (Event.is_write a && Event.is_write b)))
  then add Po_same_location;
  if Array.exists (fun e -> e.Event.rmw_partner <> None) events then
    add Preserved_po;
  if
    has (fun a b ->
        Event.is_write a && Event.is_read b && Event.same_loc a b
        && non_init a && a.Event.tid <> b.Event.tid)
  then add External_read_from;
  if
    has (fun a b ->
        Event.is_write a && Event.is_read b && Event.same_loc a b
        && a.Event.tid = b.Event.tid && non_init a
        && a.Event.rmw_partner <> Some b.Event.id)
  then add Internal_read_from;
  if
    has (fun a b ->
        Event.is_write a && Event.is_write b && Event.same_loc a b
        && non_init a && non_init b)
  then add Coherence_order;
  if
    has (fun a b ->
        Event.is_read a && Event.is_write b && Event.same_loc a b && non_init b
        && a.Event.rmw_partner <> Some b.Event.id)
  then add From_read_order;
  if Array.exists Event.is_fence events then add Barriers;
  List.rev !cats

let coverage tests =
  let table = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace table c 0) all_categories;
  List.iter
    (fun t ->
      List.iter
        (fun c -> Hashtbl.replace table c (Hashtbl.find table c + 1))
        (classify t))
    tests;
  List.map (fun c -> (c, Hashtbl.find table c)) all_categories
