(** Classification of litmus tests by the ordering relations they
    exercise — the rows of the paper's Table 6. *)

type category =
  | Dependencies  (** register dependencies for addr, data, ctrl *)
  | Po_same_location  (** Rd-Rd or Wr-Wr to the same address, same core *)
  | Preserved_po  (** instruction pairs kept in program order (AMO/LR-SC) *)
  | External_read_from  (** Wr-Rd same address, different cores *)
  | Internal_read_from  (** Wr-Rd same address, same core *)
  | Coherence_order  (** Wr-Wr total order to the same address *)
  | From_read_order  (** Rd-Wr to the same address *)
  | Barriers  (** ordering imposed by fences *)

val all_categories : category list
val name : category -> string
val description : category -> string

val classify : Lit_test.t -> category list
(** Relations whose coverage the test contributes to, derived from the
    compiled event graph structure. *)

val coverage : Lit_test.t list -> (category * int) list
(** Table 6: how many tests in the suite cover each relation. *)
