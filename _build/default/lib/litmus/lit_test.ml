open Ise_model
open Ise_model.Types

type atom =
  | Reg_is of tid * reg * value
  | Mem_is of loc * value

type cond = atom list

type expectation = Allowed | Forbidden

type t = {
  name : string;
  doc : string;
  threads : Instr.t list array;
  cond : cond;
  expect : (Axiom.model * expectation) list;
}

let make ~name ?(doc = "") ?(expect = []) threads cond =
  { name; doc; threads; cond; expect }

let cond_holds cond outcome =
  List.for_all
    (function
      | Reg_is (tid, r, v) -> Outcome.reg outcome tid r = v
      | Mem_is (l, v) -> Outcome.mem_value outcome l = v)
    cond

let satisfiable cfg t =
  let allowed = Check.allowed cfg t.threads in
  Outcome.Set.exists (cond_holds t.cond) allowed

let verdict cfg t = if satisfiable cfg t then Allowed else Forbidden

let check_expectations t =
  List.map
    (fun (model, expected) ->
      let actual = verdict { Axiom.model; faults = Axiom.Precise } t in
      (model, expected, actual))
    t.expect

let stores_of t =
  let acc = ref [] in
  Array.iteri
    (fun tid instrs ->
      List.iteri
        (fun i instr ->
          match instr with
          | Instr.Store _ | Instr.Store_reg _ | Instr.Store_dep _ ->
            acc := (tid, i) :: !acc
          | _ -> ())
        instrs)
    t.threads;
  List.rev !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %s@," t.name t.doc;
  Array.iteri
    (fun tid instrs ->
      Format.fprintf ppf "  T%d:" tid;
      List.iter (fun i -> Format.fprintf ppf " %a;" Instr.pp i) instrs;
      Format.fprintf ppf "@,")
    t.threads;
  Format.fprintf ppf "@]"
