(** Hand-written litmus tests.

    The classic suite: message passing, store buffering, load
    buffering, independent reads of independent writes, write-to-read
    causality, coherence shapes, fence and dependency variants, and
    atomic operations — the families the RISC-V litmus suite draws
    from (§6.3, Table 6).  Expected verdicts under SC / PC / WC are
    hand-written from the literature where unambiguous and used to
    validate the axiomatisation. *)

val x : Ise_model.Types.loc
val y : Ise_model.Types.loc
val z : Ise_model.Types.loc

val mp : Lit_test.t
val mp_fenced : Lit_test.t
(** Figure 1 of the paper. *)

val mp_fence_addr : Lit_test.t
val mp_fence_data : Lit_test.t
val mp_fence_ctrl : Lit_test.t
val sb : Lit_test.t
val sb_fenced : Lit_test.t
val lb : Lit_test.t
val lb_data : Lit_test.t
val lb_ctrl : Lit_test.t
val iriw : Lit_test.t
val iriw_fenced : Lit_test.t
val wrc : Lit_test.t
val wrc_deps : Lit_test.t
val s_test : Lit_test.t
val two_plus_two_w : Lit_test.t
val corr : Lit_test.t
val coww : Lit_test.t
val corw1 : Lit_test.t
val cowr : Lit_test.t
val corw2 : Lit_test.t
val amo_add_add : Lit_test.t
val amo_swap_obs : Lit_test.t
val mp_amo : Lit_test.t
val sb_three : Lit_test.t
val isa2 : Lit_test.t
val r_test : Lit_test.t
val r_fenced : Lit_test.t
val s_fenced : Lit_test.t
val two_plus_two_w_fenced : Lit_test.t
val lb_fenced : Lit_test.t
val lb_addr : Lit_test.t
val rwc : Lit_test.t
val rwc_fenced : Lit_test.t
val wrc_fences : Lit_test.t
val iriw_addrs : Lit_test.t
val sb_amo : Lit_test.t
val corr3 : Lit_test.t
val coww_chain : Lit_test.t
val amo_release_chain : Lit_test.t
val mp_swap_flag : Lit_test.t

val all : Lit_test.t list
(** Every test above, in a stable order. *)

val find : string -> Lit_test.t
(** Lookup by name. @raise Not_found. *)
