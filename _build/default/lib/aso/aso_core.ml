open Ise_sim

type run_metrics = {
  cycles : int;
  retired : int;
  ipc : float;
  sb_occupancy_watermark : int;
  sb_inflight_watermark : int;
}

let null_hooks : Machine.hooks =
  {
    Machine.on_imprecise =
      (fun _ -> failwith "Aso_core.run: unexpected imprecise exception");
    on_precise =
      (fun ~core:_ ~addr:_ ~code:_ ~retry:_ ->
        failwith "Aso_core.run: unexpected precise exception");
  }

let run ?(max_cycles = 100_000_000) ~cfg ~programs () =
  let machine = Machine.create ~cfg ~programs:(programs ()) () in
  Machine.set_hooks machine null_hooks;
  Machine.set_trace_enabled machine false;
  Machine.run ~max_cycles machine;
  let n = Machine.ncores machine in
  let retired = Machine.total_retired machine in
  let cycles = Machine.cycles machine in
  let occ = ref 0 and infl = ref 0 in
  for i = 0 to n - 1 do
    occ := max !occ (Core.sb_occupancy_watermark (Machine.core machine i));
    infl := max !infl (Core.sb_inflight_watermark (Machine.core machine i))
  done;
  {
    cycles;
    retired;
    ipc = float_of_int retired /. float_of_int (max 1 cycles);
    sb_occupancy_watermark = !occ;
    sb_inflight_watermark = !infl;
  }

let aso_config ~checkpoints cfg =
  (* WC-equivalent timing: a scalable store buffer (4x the hardware SB
     so buffering is never the limit) with drain concurrency bounded
     by the checkpoint count — each outstanding store miss holds one
     checkpoint. *)
  { (Config.with_consistency Ise_model.Axiom.Wc cfg) with
    Config.sb_entries = cfg.Config.sb_entries * 4;
    sb_max_inflight = checkpoints }

type sizing = {
  checkpoints : int;
  aso_ipc : float;
  wc_ipc : float;
  sc_ipc : float;
  wc_speedup : float;
  state : Spec_state.components;
  state_kb : float;
}

let size_for_wc_performance ?(target_fraction = 0.98) ?(max_checkpoints = 64)
    ~cfg ~programs () =
  let wc = run ~cfg:(Config.with_consistency Ise_model.Axiom.Wc cfg) ~programs () in
  let sc_cfg =
    { (Config.with_consistency Ise_model.Axiom.Sc cfg) with
      Config.sc_speculative_loads = true }
  in
  let sc = run ~cfg:sc_cfg ~programs () in
  let target = target_fraction *. wc.ipc in
  let ipc_for k =
    (run ~cfg:(aso_config ~checkpoints:k cfg) ~programs ()).ipc
  in
  (* binary search over the checkpoint count (IPC is monotonic in k) *)
  let rec search lo hi best best_ipc =
    if lo > hi then (best, best_ipc)
    else
      let mid = (lo + hi) / 2 in
      let ipc = ipc_for mid in
      if ipc >= target then search lo (mid - 1) mid ipc
      else search (mid + 1) hi best best_ipc
  in
  let k, aso_ipc = search 1 max_checkpoints max_checkpoints 0. in
  let aso_ipc = if aso_ipc = 0. then ipc_for k else aso_ipc in
  let aso = run ~cfg:(aso_config ~checkpoints:k cfg) ~programs () in
  let state =
    Spec_state.for_checkpoints ~checkpoints:k
      ~ssb_entries:(max aso.sb_occupancy_watermark k)
  in
  {
    checkpoints = k;
    aso_ipc;
    wc_ipc = wc.ipc;
    sc_ipc = sc.ipc;
    wc_speedup = wc.ipc /. sc.ipc;
    state;
    state_kb = Spec_state.total_kb state;
  }
