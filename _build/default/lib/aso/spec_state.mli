(** Speculation-state accounting for ASO-style post-retirement
    speculation (§3.2-3.3).

    The state required to give an SC core WC-equivalent performance:
    - a scalable store buffer entry (16 B) per speculatively retired
      store;
    - per checkpoint, up to 32 extra physical registers (256 B) plus a
      map table of 32 logical→physical mappings at 10 bits each
      (40 B);
    - fixed per-core cache metadata: per-word valid and
      Speculatively-Written bits in the L1D, Speculatively-Read bits
      in the L1D and the L2 slice. *)

type components = {
  ssb_bytes : int;
  registers_bytes : int;
  map_tables_bytes : int;
  cache_bits_bytes : int;
}

val bytes_per_ssb_entry : int
val bytes_per_checkpoint_registers : int
val bytes_per_map_table : int
val fixed_cache_bits_bytes : int

val for_checkpoints : checkpoints:int -> ssb_entries:int -> components
(** State for a configuration supporting [checkpoints] concurrent
    checkpoints and an [ssb_entries]-deep scalable store buffer. *)

val total_bytes : components -> int
val total_kb : components -> float
val pp : Format.formatter -> components -> unit
