(** ASO performance evaluation (§3.3, Table 3).

    ASO gives an SC core the timing of a relaxed-consistency core by
    speculatively retiring past store misses, bounded by the number of
    checkpoints — each outstanding store miss holds one checkpoint.
    In the simulator this is modelled exactly: an ASO configuration is
    the WC drain engine with the concurrent-drain budget set to the
    checkpoint count and a scalable store buffer (semantically the
    core remains SC because speculation is invisible; the evaluation
    is timing-only, and Table 3's runs have no exceptions).

    [size_for_wc_performance] reproduces the paper's methodology:
    find the smallest checkpoint count whose IPC reaches the target
    fraction (98%) of the unbounded-WC IPC, and report the speculation
    state it implies. *)

type run_metrics = {
  cycles : int;
  retired : int;
  ipc : float;
  sb_occupancy_watermark : int;  (** max scalable-store-buffer depth *)
  sb_inflight_watermark : int;  (** max outstanding store misses *)
}

val run :
  ?max_cycles:int -> cfg:Ise_sim.Config.t ->
  programs:(unit -> Ise_sim.Sim_instr.stream array) -> unit -> run_metrics
(** Runs the machine to completion with a null OS (Table 3's runs are
    exception-free) and aggregates the metrics. *)

val aso_config :
  checkpoints:int -> Ise_sim.Config.t -> Ise_sim.Config.t
(** The ASO timing configuration on top of a base system config. *)

type sizing = {
  checkpoints : int;
  aso_ipc : float;
  wc_ipc : float;
  sc_ipc : float;
  wc_speedup : float;  (** WC IPC / SC IPC — Table 3's "WC speedup" *)
  state : Spec_state.components;
  state_kb : float;
}

val size_for_wc_performance :
  ?target_fraction:float -> ?max_checkpoints:int ->
  cfg:Ise_sim.Config.t ->
  programs:(unit -> Ise_sim.Sim_instr.stream array) -> unit -> sizing
(** Binary-search the minimum checkpoint count reaching
    [target_fraction] (default 0.98) of WC IPC. *)
