type components = {
  ssb_bytes : int;
  registers_bytes : int;
  map_tables_bytes : int;
  cache_bits_bytes : int;
}

let bytes_per_ssb_entry = 16
let bytes_per_checkpoint_registers = 256
let bytes_per_map_table = 40  (* 32 mappings x 10 bits, rounded to bytes *)

(* L1D (64 KiB): per-word valid + SW bits = 8192 words x 2 bits = 2 KiB;
   per-word SR bits = 1 KiB.  L2 slice (1 MiB): SR bits at double-word
   granularity = 65536 double-words / 8 = 8 KiB. *)
let fixed_cache_bits_bytes = 2048 + 1024 + 8192

let for_checkpoints ~checkpoints ~ssb_entries =
  {
    ssb_bytes = ssb_entries * bytes_per_ssb_entry;
    registers_bytes = checkpoints * bytes_per_checkpoint_registers;
    map_tables_bytes = checkpoints * bytes_per_map_table;
    cache_bits_bytes = fixed_cache_bits_bytes;
  }

let total_bytes c =
  c.ssb_bytes + c.registers_bytes + c.map_tables_bytes + c.cache_bits_bytes

let total_kb c = float_of_int (total_bytes c) /. 1024.

let pp ppf c =
  Format.fprintf ppf
    "ssb=%dB regs=%dB maps=%dB cache-bits=%dB total=%.1fKB" c.ssb_bytes
    c.registers_bytes c.map_tables_bytes c.cache_bits_bytes (total_kb c)
