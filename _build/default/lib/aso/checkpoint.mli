(** ASO checkpoint pool (§3.2).

    When an SC core would stall on an ordering requirement (a store
    miss), it takes a checkpoint — a snapshot of the map table and the
    physical registers holding the legal SC state — and speculatively
    retires past the stall.  A checkpoint is merged into its
    predecessor when the covered store completes without exception;
    speculation fails (rollback to the oldest checkpoint) when an
    exception is detected on a speculated store. *)

type t

val create : max_checkpoints:int -> t

val try_allocate : t -> store_seq:int -> bool
(** Take a checkpoint covering a store miss; [false] when the pool is
    exhausted (the core must stall — this is the knob Table 3 sizes). *)

val complete : t -> store_seq:int -> unit
(** The store completed without exception: merge its checkpoint into
    the previous one, freeing the registers. *)

val rollback : t -> store_seq:int -> int
(** Exception on a speculated store: discard its checkpoint and every
    younger one; returns how many were discarded. *)

val active : t -> int
val watermark : t -> int
(** Maximum simultaneously live checkpoints. *)

val allocation_failures : t -> int
val rollbacks : t -> int
