lib/aso/aso_core.ml: Config Core Ise_model Ise_sim Machine Spec_state
