lib/aso/checkpoint.ml: List
