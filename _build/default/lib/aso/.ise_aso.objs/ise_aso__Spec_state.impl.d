lib/aso/spec_state.ml: Format
