lib/aso/checkpoint.mli:
