lib/aso/spec_state.mli: Format
