lib/aso/aso_core.mli: Ise_sim Spec_state
