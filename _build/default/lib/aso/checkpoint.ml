type t = {
  max : int;
  mutable live : int list;  (* store seqs, oldest first *)
  mutable peak : int;
  mutable failures : int;
  mutable n_rollbacks : int;
}

let create ~max_checkpoints =
  { max = max_checkpoints; live = []; peak = 0; failures = 0; n_rollbacks = 0 }

let active t = List.length t.live
let watermark t = t.peak
let allocation_failures t = t.failures
let rollbacks t = t.n_rollbacks

let try_allocate t ~store_seq =
  if active t >= t.max then begin
    t.failures <- t.failures + 1;
    false
  end
  else begin
    t.live <- t.live @ [ store_seq ];
    t.peak <- max t.peak (active t);
    true
  end

let complete t ~store_seq =
  t.live <- List.filter (fun s -> s <> store_seq) t.live

let rollback t ~store_seq =
  let kept, discarded = List.partition (fun s -> s < store_seq) t.live in
  t.live <- kept;
  t.n_rollbacks <- t.n_rollbacks + 1;
  List.length discarded
