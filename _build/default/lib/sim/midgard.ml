type vma = { v_base : int; v_bytes : int }

type t = {
  page_bits : int;
  walk_latency : int;
  mutable vmas : vma list;
  mapped : (int, unit) Hashtbl.t;  (* page number -> mapped *)
  mutable faults : int;
  mutable walks : int;
}

let create ?(page_bits = 12) ?(walk_latency = 24) () =
  { page_bits; walk_latency; vmas = []; mapped = Hashtbl.create 256;
    faults = 0; walks = 0 }

let add_vma t ~base ~bytes = t.vmas <- { v_base = base; v_bytes = bytes } :: t.vmas

let in_vma t addr =
  List.exists
    (fun v -> addr >= v.v_base && addr < v.v_base + v.v_bytes)
    t.vmas

let page t addr = addr lsr t.page_bits

let map_page t addr = Hashtbl.replace t.mapped (page t addr) ()
let unmap_page t addr = Hashtbl.remove t.mapped (page t addr)
let is_mapped t addr = Hashtbl.mem t.mapped (page t addr)

let map_all t =
  List.iter
    (fun v ->
      let p = ref v.v_base in
      while !p < v.v_base + v.v_bytes do
        map_page t !p;
        p := !p + (1 lsl t.page_bits)
      done)
    t.vmas

let interceptor t =
  {
    Memsys.int_name = "midgard";
    check =
      (fun ~addr ~write:_ ->
        if in_vma t addr && not (is_mapped t addr) then begin
          t.faults <- t.faults + 1;
          Some Ise_core.Fault.Page_fault
        end
        else None);
    extra_latency =
      (fun ~addr ->
        if in_vma t addr then begin
          t.walks <- t.walks + 1;
          t.walk_latency
        end
        else 0);
  }

let faults_taken t = t.faults
let walks_performed t = t.walks
let pages_mapped t = Hashtbl.length t.mapped
