(** A Midgard-style intermediate address space (paper §2.2, Example 2).

    In Midgard the cache hierarchy is indexed by an intermediate
    address space: the lightweight VMA-based virtual→Midgard
    translation happens at the core for every access, while the
    heavyweight page-based Midgard→physical translation is needed only
    when the cache hierarchy misses.  A store can therefore pass its
    front-end translation, retire, miss in the LLC, and {e then} take
    a page fault during the back-end translation — an imprecise store
    exception.

    This module models the back-end: a set of VMAs (front-end checks
    are assumed to have passed — the simulator's addresses {e are}
    Midgard addresses) and a Midgard→physical page table.  It plugs
    into {!Memsys} as a memory-side interceptor: accesses that miss
    the LLC inside a registered VMA pay a page-walk latency and fault
    when the page is unmapped. *)

type t

val create : ?page_bits:int -> ?walk_latency:int -> unit -> t
(** [walk_latency] (default 24 cycles) models the page-based
    Midgard→physical walk performed on every LLC miss in a VMA. *)

val add_vma : t -> base:int -> bytes:int -> unit
(** Registers a virtual memory area in the Midgard space.  Pages
    inside a VMA start unmapped (demand-backed). *)

val in_vma : t -> int -> bool

val map_page : t -> int -> unit
(** OS side: establishes the Midgard→physical mapping for the page
    containing the address. *)

val unmap_page : t -> int -> unit
val is_mapped : t -> int -> bool

val map_all : t -> unit
(** Pre-populates every page of every VMA (a fault-free baseline). *)

val interceptor : t -> Memsys.interceptor
(** The memory-side hook: LLC misses inside a VMA pay the walk latency
    and are denied with [Page_fault] when the page is unmapped. *)

val faults_taken : t -> int
val walks_performed : t -> int
val pages_mapped : t -> int
