lib/sim/sb.mli: Ise_core Ise_model
