lib/sim/config.ml: Format Ise_core Ise_model
