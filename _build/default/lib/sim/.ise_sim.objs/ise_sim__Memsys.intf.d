lib/sim/memsys.mli: Config Einject Engine Ise_core
