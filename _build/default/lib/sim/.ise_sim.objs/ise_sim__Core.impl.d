lib/sim/core.ml: Array Config Engine Hashtbl Ise_core Ise_model List Memsys Sb Sim_instr
