lib/sim/core.mli: Config Engine Ise_core Memsys Sim_instr
