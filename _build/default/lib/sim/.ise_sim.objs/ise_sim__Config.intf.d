lib/sim/config.mli: Format Ise_core Ise_model
