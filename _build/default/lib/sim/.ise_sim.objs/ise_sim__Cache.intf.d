lib/sim/cache.mli:
