lib/sim/memsys.ml: Array Bitset Cache Config Einject Engine Hashtbl Ise_core Ise_util List Queue
