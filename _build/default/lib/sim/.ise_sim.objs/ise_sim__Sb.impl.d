lib/sim/sb.ml: Ise_core Ise_model List
