lib/sim/engine.mli:
