lib/sim/midgard.mli: Memsys
