lib/sim/midgard.ml: Hashtbl Ise_core List Memsys
