lib/sim/einject.mli:
