lib/sim/sim_instr.ml: Format List Memsys
