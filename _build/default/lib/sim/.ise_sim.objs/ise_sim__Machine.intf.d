lib/sim/machine.mli: Config Core Einject Engine Ise_core Memsys Sim_instr
