lib/sim/engine.ml: Ise_util Pqueue
