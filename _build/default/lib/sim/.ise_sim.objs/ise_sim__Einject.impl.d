lib/sim/einject.ml: Bitset Ise_util
