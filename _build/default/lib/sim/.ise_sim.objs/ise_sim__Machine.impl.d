lib/sim/machine.ml: Array Config Core Einject Engine Ise_core Ise_model List Memsys Printf
