lib/sim/sim_instr.mli: Format Memsys
