(** Discrete-event scheduler.

    The machine advances a global cycle counter; components schedule
    callbacks at absolute or relative cycles (memory responses, FSBC
    drain completions, OS handler phases).  Events scheduled for the
    same cycle fire in scheduling order, keeping runs deterministic. *)

type t

val create : unit -> t
val now : t -> int

val schedule_at : t -> int -> (unit -> unit) -> unit
(** @raise Invalid_argument if the cycle is in the past. *)

val schedule_in : t -> int -> (unit -> unit) -> unit

val run_due : t -> bool
(** Runs every event due at or before the current cycle; returns
    whether anything ran. *)

val advance : t -> unit
(** Moves to the next cycle. *)

val next_event_cycle : t -> int option

val skip_to_next_event : t -> bool
(** Fast-forwards the clock to the next scheduled event when all
    components are idle; returns whether time moved. *)

val pending : t -> int
