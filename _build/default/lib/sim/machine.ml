type hooks = {
  on_imprecise : int -> unit;
  on_precise :
    core:int -> addr:int -> code:Ise_core.Fault.code -> retry:(unit -> unit)
    -> unit;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  einj : Einject.t;
  memsys : Memsys.t;
  mutable cores : Core.t array;
  mutable hooks : hooks option;
  mutable trace_rev : Ise_core.Contract.event list;
  mutable trace_enabled : bool;
  mutable trace_len : int;
  trace_limit : int;
  mutable interrupts_taken : int;
  mutable interrupts_deferred : int;
}

let trace_event t ev =
  if t.trace_enabled && t.trace_len < t.trace_limit then begin
    t.trace_rev <- ev :: t.trace_rev;
    t.trace_len <- t.trace_len + 1
  end

let create ?(cfg = Config.default) ~programs () =
  let engine = Engine.create () in
  let einj =
    Einject.create ~base:cfg.Config.einject_base ~pages:cfg.Config.einject_pages
      ~page_bits:cfg.Config.page_bits
  in
  let memsys = Memsys.create cfg engine einj in
  let t =
    { cfg; engine; einj; memsys; cores = [||]; hooks = None; trace_rev = [];
      trace_enabled = true; trace_len = 0; trace_limit = 1_000_000;
      interrupts_taken = 0; interrupts_deferred = 0 }
  in
  let env : Core.env =
    {
      trace = (fun ev -> trace_event t ev);
      on_imprecise =
        (fun core ->
          match t.hooks with
          | Some h -> h.on_imprecise core
          | None -> failwith "Machine: no OS hooks installed");
      on_precise =
        (fun ~core ~addr ~code ~retry ->
          match t.hooks with
          | Some h -> h.on_precise ~core ~addr ~code ~retry
          | None -> failwith "Machine: no OS hooks installed");
    }
  in
  let n = Array.length programs in
  if n > cfg.Config.ncores then invalid_arg "Machine.create: too many programs";
  t.cores <-
    Array.init n (fun i ->
        Core.create cfg engine memsys env ~id:i ~program:programs.(i));
  t

let set_hooks t h = t.hooks <- Some h
let cfg t = t.cfg
let engine t = t.engine
let mem t = t.memsys
let einject t = t.einj
let core t i = t.cores.(i)
let ncores t = Array.length t.cores
let set_trace_enabled t b = t.trace_enabled <- b

let all_done t = Array.for_all Core.is_done t.cores

let run ?(max_cycles = 50_000_000) t =
  if t.hooks = None then failwith "Machine.run: no OS hooks installed";
  let rec loop () =
    if all_done t then ()
    else if Engine.now t.engine > max_cycles then
      failwith
        (Printf.sprintf "Machine.run: exceeded %d cycles (livelock?)" max_cycles)
    else begin
      ignore (Engine.run_due t.engine);
      let progress = ref false in
      Array.iter (fun c -> if Core.step c then progress := true) t.cores;
      if all_done t then ()
      else if !progress then begin
        Engine.advance t.engine;
        loop ()
      end
      else if Engine.skip_to_next_event t.engine then loop ()
      else if Engine.pending t.engine > 0 then begin
        (* events due this very cycle were scheduled during core
           stepping: run them before advancing *)
        Engine.advance t.engine;
        loop ()
      end
      else
        failwith
          (Printf.sprintf "Machine.run: deadlock at cycle %d"
             (Engine.now t.engine))
    end
  in
  loop ()

let cycles t = Engine.now t.engine

let total_retired t =
  Array.fold_left (fun acc c -> acc + (Core.stats c).Core.retired) 0 t.cores

let trace t = List.rev t.trace_rev

let check_contract t =
  let ordered_apply = t.cfg.Config.consistency <> Ise_model.Axiom.Wc in
  Ise_core.Contract.check ~ordered_apply ~ncores:(Array.length t.cores)
    (trace t)

(* Periodic timer interrupts on every core, like the OS activity the
   paper's workloads run under (§6.5). *)
let enable_timer_interrupts t ~period ~handler_cycles =
  let rec tick () =
    Array.iter
      (fun core ->
        if not (Core.is_done core) then
          if Core.interrupt core ~handler_cycles then
            t.interrupts_taken <- t.interrupts_taken + 1
          else t.interrupts_deferred <- t.interrupts_deferred + 1)
      t.cores;
    if not (all_done t) then Engine.schedule_in t.engine period tick
  in
  Engine.schedule_in t.engine period tick

let interrupts_taken t = t.interrupts_taken
let interrupts_deferred t = t.interrupts_deferred

let read_word t addr = Memsys.peek t.memsys addr
let write_word t addr v = Memsys.poke t.memsys addr v
