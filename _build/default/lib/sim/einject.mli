(** EInject: the error/poison-injection device (§6.2).

    Models the paper's hardware component that monitors transactions
    between the LLC and memory: transactions whose address lies in the
    device-reserved region are checked against a per-page fault
    bitmap, and transactions to a marked page are denied with a bus
    error.  Software manages the bitmap through the [set] and [clr]
    MMIO registers (here: direct function calls). *)

type t

val create : base:int -> pages:int -> page_bits:int -> t

val base : t -> int
val size_bytes : t -> int
val contains : t -> int -> bool
(** Whether a byte address lies in the reserved region. *)

val set_faulting : t -> int -> unit
(** MMIO [set]: marks the 4 KiB page containing the address.
    Addresses outside the region are ignored (like writes to an
    unmapped MMIO register). *)

val clear_faulting : t -> int -> unit
(** MMIO [clr]: unmarks the page containing the address. *)

val is_faulting : t -> int -> bool
(** Device check on a memory transaction: [true] means the
    transaction is denied with a bus error. *)

val faulting_pages : t -> int
val injections : t -> int
(** Number of transactions denied so far. *)

val record_denial : t -> unit
(** Called by the memory system when it denies a transaction. *)

val clear_all : t -> unit
