type reg = int

type addr_expr = {
  base : int;
  dep : reg option;
}

type data_expr = Imm of int | From_reg of reg

type t =
  | Ld of { dst : reg; addr : addr_expr }
  | St of { addr : addr_expr; data : data_expr }
  | Amo of { dst : reg; addr : addr_expr; op : Memsys.amo }
  | Fence
  | Ctrl of reg
  | Nop of int

let addr ?dep base = { base; dep }

let is_store = function St _ -> true | _ -> false

let is_memory = function
  | Ld _ | St _ | Amo _ -> true
  | Fence | Ctrl _ | Nop _ -> false

let pp ppf = function
  | Ld { dst; addr } -> Format.fprintf ppf "ld r%d, [0x%x]" dst addr.base
  | St { addr; data = Imm v } -> Format.fprintf ppf "st [0x%x], %d" addr.base v
  | St { addr; data = From_reg r } ->
    Format.fprintf ppf "st [0x%x], r%d" addr.base r
  | Amo { dst; addr; op = Memsys.Swap v } ->
    Format.fprintf ppf "amoswap r%d, [0x%x], %d" dst addr.base v
  | Amo { dst; addr; op = Memsys.Add v } ->
    Format.fprintf ppf "amoadd r%d, [0x%x], %d" dst addr.base v
  | Fence -> Format.fprintf ppf "fence"
  | Ctrl r -> Format.fprintf ppf "bnez r%d" r
  | Nop n -> Format.fprintf ppf "nop(%d)" n

type stream = unit -> t option

let of_list instrs =
  let remaining = ref instrs in
  fun () ->
    match !remaining with
    | [] -> None
    | i :: rest ->
      remaining := rest;
      Some i

let concat streams =
  let remaining = ref streams in
  let rec next () =
    match !remaining with
    | [] -> None
    | s :: rest -> (
      match s () with
      | Some i -> Some i
      | None ->
        remaining := rest;
        next ())
  in
  next

let count = List.length
