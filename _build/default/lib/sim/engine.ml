(* Discrete-event scheduler shared by all simulator components.  See
   engine.mli. *)

open Ise_util

type t = {
  mutable now : int;
  queue : (unit -> unit) Pqueue.t;
}

let create () = { now = 0; queue = Pqueue.create () }
let now t = t.now

let schedule_at t cycle f =
  if cycle < t.now then invalid_arg "Engine.schedule_at: in the past";
  Pqueue.push t.queue cycle f

let schedule_in t delay f = schedule_at t (t.now + delay) f

let run_due t =
  let rec loop ran =
    match Pqueue.peek t.queue with
    | Some (cycle, _) when cycle <= t.now ->
      (match Pqueue.pop t.queue with
       | Some (_, f) ->
         f ();
         loop true
       | None -> ran)
    | _ -> ran
  in
  loop false

let advance t = t.now <- t.now + 1

let next_event_cycle t =
  match Pqueue.peek t.queue with Some (c, _) -> Some c | None -> None

let skip_to_next_event t =
  match next_event_cycle t with
  | Some c when c > t.now ->
    t.now <- c;
    true
  | _ -> false

let pending t = Pqueue.length t.queue
