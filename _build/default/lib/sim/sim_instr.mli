(** The simulator's instruction set.

    A deliberately small ISA for trace-driven simulation: loads,
    stores, atomics, fences, control dependencies, and fixed-latency
    compute ([Nop]) standing in for the "Others" fraction of an
    instruction mix.  Addresses may depend on a register (resolved
    when the producing load completes) so litmus dependencies and
    pointer-chasing workloads stall realistically even though the
    trace generator knows all addresses ahead of time. *)

type reg = int

type addr_expr = {
  base : int;  (** the effective byte address *)
  dep : reg option;  (** register that must be ready first *)
}

type data_expr = Imm of int | From_reg of reg

type t =
  | Ld of { dst : reg; addr : addr_expr }
  | St of { addr : addr_expr; data : data_expr }
  | Amo of { dst : reg; addr : addr_expr; op : Memsys.amo }
  | Fence
  | Ctrl of reg
      (** unresolved branch: younger instructions may not issue until
          the register is ready (no branch speculation) *)
  | Nop of int  (** completes [n ≥ 1] cycles after dispatch *)

val addr : ?dep:reg -> int -> addr_expr
val is_store : t -> bool
val is_memory : t -> bool
val pp : Format.formatter -> t -> unit

type stream = unit -> t option
(** Lazily produced instruction sequence; [None] ends the program. *)

val of_list : t list -> stream
val concat : stream list -> stream
val count : t list -> int
