open Ise_util

type t = {
  base_addr : int;
  pages : int;
  page_bits : int;
  bitmap : Bitset.t;
  mutable denials : int;
}

let create ~base ~pages ~page_bits =
  { base_addr = base; pages; page_bits; bitmap = Bitset.create pages;
    denials = 0 }

let base t = t.base_addr
let size_bytes t = t.pages lsl t.page_bits

let contains t addr = addr >= t.base_addr && addr < t.base_addr + size_bytes t

let page_index t addr = (addr - t.base_addr) lsr t.page_bits

let set_faulting t addr =
  if contains t addr then Bitset.set t.bitmap (page_index t addr)

let clear_faulting t addr =
  if contains t addr then Bitset.clear t.bitmap (page_index t addr)

let is_faulting t addr = contains t addr && Bitset.mem t.bitmap (page_index t addr)

let faulting_pages t = Bitset.cardinal t.bitmap
let injections t = t.denials
let record_denial t = t.denials <- t.denials + 1
let clear_all t = Bitset.clear_all t.bitmap
