(** The imprecise store-exception protocol (§4.5-4.6, §5.3).

    When the store buffer detects an imprecise store exception, the
    unfinished stores must be routed either to memory or to the FSB.
    The two formal treatments are:

    - {b Same stream} (§4.6, the paper's design): the faulting store
      and {e every} unfinished store in the buffer drain to the FSB in
      store-buffer (FIFO) order; the OS applies them in interface
      order.  Race-free by construction under PC.
    - {b Split stream} (§4.5): only faulting stores drain to the FSB;
      non-faulting stores drain directly to memory.  This requires a
      hardware/software barrier to close the PUT/GET race under PC and
      is kept for ablation.

    For the contract (Table 5) the partitioning must preserve
    store-buffer order within each destination. *)

type mode = Same_stream | Split_stream

val mode_to_string : mode -> string

type 'a entry = { payload : 'a; faulting : bool }

type 'a routing = {
  to_fsb : 'a list;  (** FIFO order, to be PUT via the FSBC *)
  to_memory : 'a list;  (** FIFO order, drained directly *)
}

val route : mode -> 'a entry list -> 'a routing
(** Partition the store-buffer contents (given oldest-first) at
    exception-detection time.  [Same_stream] sends everything to the
    FSB; [Split_stream] splits by the faulting flag. *)

val requires_barrier : mode -> bool
(** Whether the mode needs PUT/GET synchronisation to be PC-correct —
    the complexity argument of §4.5. *)

(** {1 Exception priority (§5.3)}

    Before handling any precise exception the core drains the store
    buffer; a detected imprecise store exception on an older store
    takes priority and the precise exception is re-generated later. *)

type pending_exception =
  | Precise of { po_index : int }
  | Imprecise of { oldest_store_seq : int }

val priority : pending_exception list -> pending_exception option
(** The exception to handle first: any imprecise store exception beats
    a precise one (its store is older — it already retired). Among
    imprecise, the one with the oldest store. *)
