lib/core/protocol.ml: List
