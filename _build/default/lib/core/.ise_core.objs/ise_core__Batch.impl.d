lib/core/batch.ml:
