lib/core/contract.mli: Fault Format
