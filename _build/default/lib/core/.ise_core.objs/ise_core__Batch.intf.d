lib/core/batch.mli:
