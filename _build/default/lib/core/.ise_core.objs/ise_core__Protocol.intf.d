lib/core/protocol.mli:
