lib/core/fsb.ml: Fault Ise_util List Ring_buffer
