lib/core/fault.mli: Format
