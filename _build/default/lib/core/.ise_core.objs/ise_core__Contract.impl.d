lib/core/contract.ml: Array Fault Format List Printf
