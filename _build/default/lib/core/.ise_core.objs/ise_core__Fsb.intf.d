lib/core/fsb.mli: Fault
