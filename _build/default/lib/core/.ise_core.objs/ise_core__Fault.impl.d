lib/core/fault.ml: Format Printf
