type cost_model = {
  drain_per_store : int;
  pipeline_flush : int;
  dispatch : int;
  os_other : int;
  apply_per_store : int;
  resolve_per_store : int;
  io_latency : int;
}

let default_cost_model =
  {
    drain_per_store = 4;
    pipeline_flush = 14;
    dispatch = 320;
    os_other = 180;
    apply_per_store = 60;
    resolve_per_store = 22;
    io_latency = 40_000;
  }

type breakdown = {
  uarch : float;
  apply : float;
  os_other_cycles : float;
}

let total b = b.uarch +. b.apply +. b.os_other_cycles

let per_store_overhead ?(major_faults = false) m ~batch_size =
  if batch_size <= 0 then invalid_arg "Batch.per_store_overhead";
  let n = float_of_int batch_size in
  (* the store buffer is drained once per invocation; each store pays
     its own drain slot, the flush is shared *)
  let uarch =
    ((float_of_int m.drain_per_store *. n) +. float_of_int m.pipeline_flush)
    /. n
  in
  let apply = float_of_int (m.apply_per_store + m.resolve_per_store) in
  let io =
    if not major_faults then 0.
    else if batch_size = 1 then float_of_int m.io_latency
    else
      (* batched IO requests are all scheduled in one invocation and
         overlap: the batch pays one latency plus a small issue cost *)
      (float_of_int m.io_latency +. (50. *. n)) /. n
  in
  let os_other_cycles =
    (float_of_int (m.dispatch + m.os_other) /. n) +. io
  in
  { uarch; apply; os_other_cycles }

let speedup m ~batch_size =
  let unbatched = total (per_store_overhead m ~batch_size:1) in
  let batched = total (per_store_overhead m ~batch_size) in
  unbatched /. batched
