(** Exception codes and faulting-store records.

    A faulting store is a retired store whose memory transaction was
    denied by a component in the cache/memory hierarchy (an
    accelerator, a late address translation, an error-injection
    device).  The record carries everything the OS needs to resolve
    the exception and re-apply the store (§4.1, §5.2): address, data,
    byte mask, and the component-specific error code. *)

type code =
  | No_exception
  | Page_fault  (** recoverable: demand paging / lazy allocation *)
  | Protection_fault  (** irrecoverable: the program is terminated *)
  | Bus_error  (** the EInject device denied the transaction *)
  | Accelerator of int  (** accelerator-specific error (e.g. täkō callback) *)

type severity = Recoverable | Irrecoverable

val severity_of : code -> severity
val code_to_string : code -> string

type record = {
  core : int;  (** originating core *)
  seq : int;  (** store-buffer sequence number: program order of retirement *)
  addr : int;  (** byte address *)
  data : int;  (** store data (up to 8 bytes) *)
  byte_mask : int;  (** which bytes of the word are written *)
  code : code;
}

val pp_record : Format.formatter -> record -> unit

(** {1 Table 1: classification of x86 exceptions}

    Reproduced as static data; all of these are detected in the core
    pipeline except machine checks — the observation motivating the
    paper (§2.2). *)

type x86_class = Fault | Trap | Abort

type x86_entry = {
  cls : x86_class;
  stage : string;  (** pipeline stage of origin *)
  names : string list;
}

val x86_taxonomy : x86_entry list
val x86_class_to_string : x86_class -> string
