type code =
  | No_exception
  | Page_fault
  | Protection_fault
  | Bus_error
  | Accelerator of int

type severity = Recoverable | Irrecoverable

let severity_of = function
  | No_exception | Page_fault | Bus_error | Accelerator _ -> Recoverable
  | Protection_fault -> Irrecoverable

let code_to_string = function
  | No_exception -> "none"
  | Page_fault -> "page-fault"
  | Protection_fault -> "protection-fault"
  | Bus_error -> "bus-error"
  | Accelerator n -> Printf.sprintf "accelerator-%d" n

type record = {
  core : int;
  seq : int;
  addr : int;
  data : int;
  byte_mask : int;
  code : code;
}

let pp_record ppf r =
  Format.fprintf ppf "{core=%d seq=%d addr=0x%x data=%d mask=0x%x code=%s}"
    r.core r.seq r.addr r.data r.byte_mask (code_to_string r.code)

type x86_class = Fault | Trap | Abort

type x86_entry = {
  cls : x86_class;
  stage : string;
  names : string list;
}

let x86_class_to_string = function
  | Fault -> "Fault"
  | Trap -> "Trap"
  | Abort -> "Abort"

let x86_taxonomy =
  [
    { cls = Fault; stage = "Fetch";
      names =
        [ "Control protection exception"; "Code page fault";
          "Code-segment limit violation" ] };
    { cls = Fault; stage = "Decode";
      names = [ "Invalid opcode"; "Device not available"; "Debug" ] };
    { cls = Fault; stage = "Execute";
      names =
        [ "Divide by zero"; "Bound range exceeded"; "FP error";
          "Alignment check"; "SIMD FP exception"; "Invalid TSS" ] };
    { cls = Fault; stage = "Memory";
      names =
        [ "Segment not present"; "Stack-segment fault"; "Page fault";
          "General protection fault"; "Virtualization exception" ] };
    { cls = Trap; stage = "Execute";
      names = [ "Debug"; "Breakpoint"; "Overflow" ] };
    { cls = Abort; stage = "Cache/memory hierarchy";
      names = [ "Double fault"; "Triple fault"; "Machine Check" ] };
  ]
