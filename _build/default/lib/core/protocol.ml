type mode = Same_stream | Split_stream

let mode_to_string = function
  | Same_stream -> "same-stream"
  | Split_stream -> "split-stream"

type 'a entry = { payload : 'a; faulting : bool }

type 'a routing = {
  to_fsb : 'a list;
  to_memory : 'a list;
}

let route mode entries =
  match mode with
  | Same_stream ->
    { to_fsb = List.map (fun e -> e.payload) entries; to_memory = [] }
  | Split_stream ->
    let faulting, clean = List.partition (fun e -> e.faulting) entries in
    { to_fsb = List.map (fun e -> e.payload) faulting;
      to_memory = List.map (fun e -> e.payload) clean }

let requires_barrier = function Same_stream -> false | Split_stream -> true

type pending_exception =
  | Precise of { po_index : int }
  | Imprecise of { oldest_store_seq : int }

let priority pending =
  let imprecise =
    List.filter_map
      (function Imprecise i -> Some i.oldest_store_seq | Precise _ -> None)
      pending
  in
  match imprecise with
  | [] -> (
    match pending with
    | [] -> None
    | _ ->
      let oldest =
        List.fold_left
          (fun acc p ->
            match (acc, p) with
            | None, Precise _ -> Some p
            | Some (Precise a), Precise b when b.po_index < a.po_index -> Some p
            | acc, _ -> acc)
          None pending
      in
      oldest)
  | seqs ->
    let oldest = List.fold_left min max_int seqs in
    Some (Imprecise { oldest_store_seq = oldest })
