(** Batching of imprecise store-exception handling (§5.3, Figure 5).

    One imprecise exception can cover every faulting store present in
    the store buffer, so the fixed costs of a handler invocation
    (pipeline flush, exception dispatch, context switching) are paid
    once per batch instead of once per store, and IO requests for
    major faults can be scheduled together, overlapping their
    latencies. *)

type cost_model = {
  drain_per_store : int;  (** FSBC cycles to drain one store to the FSB *)
  pipeline_flush : int;  (** cycles to flush the ROB and redirect fetch *)
  dispatch : int;  (** exception dispatch + context switch, per invocation *)
  os_other : int;  (** misc kernel work per invocation (accounting, return) *)
  apply_per_store : int;  (** cycles for the OS to apply one faulting store *)
  resolve_per_store : int;  (** cycles to resolve one fault (e.g. clear EInject) *)
  io_latency : int;  (** latency of one IO request (major fault), cycles *)
}

val default_cost_model : cost_model
(** Calibrated so an unbatched minor fault costs ~600 cycles per
    faulting store, of which the microarchitectural part is a tiny
    fraction — the shape of Figure 5. *)

type breakdown = {
  uarch : float;  (** per-store microarchitectural cycles (drain + flush) *)
  apply : float;  (** per-store OS cycles applying the store *)
  os_other_cycles : float;  (** per-store other OS cycles (dispatch etc.) *)
}

val total : breakdown -> float

val per_store_overhead :
  ?major_faults:bool -> cost_model -> batch_size:int -> breakdown
(** Average overhead per faulting store when [batch_size] faulting
    stores are handled by one handler invocation.  With
    [major_faults], each store needs an IO request; batched IO
    overlaps (one latency for the batch), unbatched IO serialises. *)

val speedup : cost_model -> batch_size:int -> float
(** Per-store overhead ratio unbatched/batched. *)
