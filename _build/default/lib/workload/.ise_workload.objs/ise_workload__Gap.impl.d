lib/workload/gap.ml: Array Einject Graph Hashtbl Ise_sim List Machine Queue Sim_instr
