lib/workload/tailbench.mli: Ise_sim
