lib/workload/mbench.ml: Config Core Einject Ise_os Ise_sim Ise_util List Machine Rng Sim_instr Stats
