lib/workload/gap.mli: Graph Ise_sim
