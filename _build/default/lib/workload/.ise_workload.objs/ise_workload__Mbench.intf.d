lib/workload/mbench.mli: Ise_sim
