lib/workload/graph.ml: Array Ise_util List Queue Rng
