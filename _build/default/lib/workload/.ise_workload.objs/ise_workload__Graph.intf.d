lib/workload/graph.mli: Ise_util
