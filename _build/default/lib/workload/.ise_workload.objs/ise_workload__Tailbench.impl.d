lib/workload/tailbench.ml: Array Einject Ise_sim Ise_util List Machine Rng Sim_instr
