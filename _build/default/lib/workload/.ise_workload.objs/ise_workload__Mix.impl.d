lib/workload/mix.ml: Array Ise_sim Ise_util List Rng
