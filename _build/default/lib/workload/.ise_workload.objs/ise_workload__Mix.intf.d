lib/workload/mix.mli: Ise_sim
