lib/workload/runner.ml: Config Core Ise_os Ise_sim Machine
