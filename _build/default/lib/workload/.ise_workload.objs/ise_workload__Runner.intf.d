lib/workload/runner.mli: Ise_sim
