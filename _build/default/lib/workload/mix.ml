open Ise_util

type profile = {
  name : string;
  suite : string;
  store_pct : int;
  load_pct : int;
  sync_pct : int;
  store_cold_pct : int;
  store_shared_pct : int;
  load_cold_pct : int;
  hot_bytes : int;
  cold_bytes : int;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* The locality knobs are calibrated so the WC-over-SC speedups line
   up with Table 3's shape: store-miss-heavy BC gains the most, the
   nearly store-free SSSP gains almost nothing. *)
let table3 =
  [
    { name = "BFS"; suite = "GAP"; store_pct = 11; load_pct = 22; sync_pct = 0;
      store_cold_pct = 9; store_shared_pct = 8; load_cold_pct = 35; hot_bytes = kib 32;
      cold_bytes = mib 64 };
    { name = "SSSP"; suite = "GAP"; store_pct = 3; load_pct = 22; sync_pct = 1;
      store_cold_pct = 4; store_shared_pct = 0; load_cold_pct = 45; hot_bytes = kib 32;
      cold_bytes = mib 64 };
    { name = "BC"; suite = "GAP"; store_pct = 25; load_pct = 25; sync_pct = 0;
      store_cold_pct = 25; store_shared_pct = 35; load_cold_pct = 25; hot_bytes = kib 32;
      cold_bytes = mib 64 };
    { name = "Silo"; suite = "Tailbench"; store_pct = 7; load_pct = 13;
      sync_pct = 2; store_cold_pct = 0; store_shared_pct = 100; load_cold_pct = 30;
      hot_bytes = kib 48; cold_bytes = mib 32 };
    { name = "Masstree"; suite = "Tailbench"; store_pct = 14; load_pct = 13;
      sync_pct = 0; store_cold_pct = 8; store_shared_pct = 10; load_cold_pct = 35;
      hot_bytes = kib 48; cold_bytes = mib 32 };
    { name = "Data Caching"; suite = "Cloudsuite"; store_pct = 11;
      load_pct = 24; sync_pct = 0; store_cold_pct = 2; store_shared_pct = 0; load_cold_pct = 35;
      hot_bytes = kib 48; cold_bytes = mib 32 };
    { name = "Media Streaming"; suite = "Cloudsuite"; store_pct = 9;
      load_pct = 13; sync_pct = 0; store_cold_pct = 3; store_shared_pct = 0; load_cold_pct = 40;
      hot_bytes = kib 48; cold_bytes = mib 32 };
    { name = "Data Serving"; suite = "Cloudsuite"; store_pct = 9;
      load_pct = 24; sync_pct = 0; store_cold_pct = 2; store_shared_pct = 0; load_cold_pct = 35;
      hot_bytes = kib 48; cold_bytes = mib 32 };
  ]

let find name = List.find (fun p -> p.name = name) table3

let footprint_bytes p = p.hot_bytes + p.cold_bytes

let stream ?(shared_base = 0xA000_0000) ~seed ~length ~base p =
  let rng = Rng.create seed in
  let emitted = ref 0 in
  let hot_words = p.hot_bytes / 8 and cold_words = p.cold_bytes / 8 in
  (* stores draw their hot addresses from a small, intensely reused
     sub-range so cache churn from streaming loads does not turn
     nominally hot stores into misses *)
  let store_hot_words = min hot_words (8192 / 8) in
  (* a small shared region models contended structures (locks,
     counters, hot index nodes): high steal probability between an SC
     prefetch and its commit write *)
  let shared_words = 512 in
  let cold_base = base + p.hot_bytes in
  let pick_store_addr () =
    let roll = Rng.int rng 100 in
    if roll < p.store_shared_pct then
      shared_base + (8 * Rng.int rng shared_words)
    else if roll < p.store_shared_pct + p.store_cold_pct then
      cold_base + (8 * Rng.int rng cold_words)
    else base + (8 * Rng.int rng store_hot_words)
  in
  let pick_addr ~store cold_pct =
    if store then pick_store_addr ()
    else if Rng.int rng 100 < cold_pct then
      cold_base + (8 * Rng.int rng cold_words)
    else base + (8 * Rng.int rng hot_words)
  in
  let reg_counter = ref 0 in
  let next_reg () =
    (* cycle through a window of registers so loads rarely serialise
       on register reuse *)
    reg_counter := (!reg_counter + 1) mod 48;
    !reg_counter
  in
  fun () ->
    if !emitted >= length then None
    else begin
      incr emitted;
      let roll = Rng.int rng 100 in
      if roll < p.store_pct then
        Some
          (Ise_sim.Sim_instr.St
             { addr = Ise_sim.Sim_instr.addr (pick_addr ~store:true p.store_cold_pct);
               data = Ise_sim.Sim_instr.Imm (Rng.int rng 1_000_000) })
      else if roll < p.store_pct + p.load_pct then
        Some
          (Ise_sim.Sim_instr.Ld
             { dst = next_reg ();
               addr = Ise_sim.Sim_instr.addr (pick_addr ~store:false p.load_cold_pct) })
      else if roll < p.store_pct + p.load_pct + p.sync_pct then
        Some Ise_sim.Sim_instr.Fence
      else Some (Ise_sim.Sim_instr.Nop 1)
    end

let multicore_streams ?shared_base ~seed ~length_per_core ~cores p =
  Array.init cores (fun i ->
      let base = 0x8000_0000 + (i * 0x0400_0000) in
      stream ?shared_base ~seed:(seed + (i * 7919)) ~length:length_per_core
        ~base p)
