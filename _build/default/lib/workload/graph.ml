open Ise_util

type t = {
  n : int;
  offsets : int array;
  edges : int array;
  weights : int array;
}

let nodes t = t.n
let nedges t = Array.length t.edges
let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let neighbors t v =
  List.init (degree t v) (fun i ->
      let e = t.offsets.(v) + i in
      (t.edges.(e), t.weights.(e)))

let of_adjacency rng adj =
  let n = Array.length adj in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + List.length adj.(v)
  done;
  let m = offsets.(n) in
  let edges = Array.make m 0 and weights = Array.make m 1 in
  for v = 0 to n - 1 do
    List.iteri
      (fun i u ->
        edges.(offsets.(v) + i) <- u;
        weights.(offsets.(v) + i) <- 1 + Rng.int rng 16)
      adj.(v)
  done;
  { n; offsets; edges; weights }

let uniform rng ~nodes:n ~avg_degree =
  let adj = Array.make n [] in
  let m = n * avg_degree in
  for _ = 1 to m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then adj.(u) <- v :: adj.(u)
  done;
  of_adjacency rng adj

let power_law rng ~nodes:n ~avg_degree =
  let adj = Array.make n [] in
  let m = n * avg_degree in
  (* preferential-attachment flavour: bias targets towards low ids,
     which accumulate high in-degree *)
  for _ = 1 to m do
    let u = Rng.int rng n in
    let v =
      let r = Rng.float rng 1.0 in
      let skewed = r *. r *. r in
      int_of_float (skewed *. float_of_int n) mod n
    in
    if u <> v then adj.(u) <- v :: adj.(u)
  done;
  of_adjacency rng adj

let footprint_bytes t = 8 * (Array.length t.offsets + (2 * nedges t))

let bfs_distances t ~src =
  let dist = Array.make t.n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
      let v = t.edges.(e) in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    done
  done;
  dist

let sssp_distances t ~src =
  let dist = Array.make t.n max_int in
  dist.(src) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to t.n - 1 do
      if dist.(u) < max_int then
        for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let v = t.edges.(e) and w = t.weights.(e) in
          if dist.(u) + w < dist.(v) then begin
            dist.(v) <- dist.(u) + w;
            changed := true
          end
        done
    done
  done;
  dist

let bc_scores t ~sources =
  let bc = Array.make t.n 0.0 in
  List.iter
    (fun src ->
      (* Brandes: forward BFS computing sigma and levels, then a
         backward dependency accumulation *)
      let sigma = Array.make t.n 0.0 in
      let dist = Array.make t.n (-1) in
      let order = ref [] in
      sigma.(src) <- 1.0;
      dist.(src) <- 0;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order := u :: !order;
        for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
          let v = t.edges.(e) in
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end;
          if dist.(v) = dist.(u) + 1 then sigma.(v) <- sigma.(v) +. sigma.(u)
        done
      done;
      let delta = Array.make t.n 0.0 in
      List.iter
        (fun u ->
          for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
            let v = t.edges.(e) in
            if dist.(v) = dist.(u) + 1 && sigma.(v) > 0. then
              delta.(u) <-
                delta.(u) +. (sigma.(u) /. sigma.(v) *. (1.0 +. delta.(v)))
          done;
          if u <> src then bc.(u) <- bc.(u) +. delta.(u))
        !order)
    sources;
  bc
