open Ise_sim

type trace = {
  name : string;
  instrs : Sim_instr.t array;
  expected : (int * int) list;
  region : int * int;
}

type layout = {
  offsets_at : int;
  edges_at : int;
  weights_at : int;
  data_at : int;  (* dist / sigma / delta arrays *)
  total_bytes : int;
}

let page = 4096
let round_up_page x = (x + page - 1) / page * page

let mk_layout (g : Graph.t) ~base ~data_arrays =
  let offsets_at = base in
  let edges_at = round_up_page (offsets_at + (8 * (g.Graph.n + 1))) in
  let weights_at = round_up_page (edges_at + (8 * Graph.nedges g)) in
  let data_at = round_up_page (weights_at + (8 * Graph.nedges g)) in
  let total_bytes =
    round_up_page (data_at + (data_arrays * 8 * g.Graph.n)) - base
  in
  { offsets_at; edges_at; weights_at; data_at; total_bytes }

let layout_bytes g = (mk_layout g ~base:0 ~data_arrays:2).total_bytes

(* Trace builder: accumulates instructions and the final stored value
   per address. *)
type builder = {
  mutable acc : Sim_instr.t list;
  mutable count : int;
  stores : (int, int) Hashtbl.t;
  mutable next_reg : int;
}

let builder () = { acc = []; count = 0; stores = Hashtbl.create 64; next_reg = 0 }

let fresh_reg b =
  b.next_reg <- (b.next_reg + 1) mod 48;
  b.next_reg

let emit b i =
  b.acc <- i :: b.acc;
  b.count <- b.count + 1

let load ?dep b addr =
  let r = fresh_reg b in
  emit b (Sim_instr.Ld { dst = r; addr = Sim_instr.addr ?dep addr });
  r

let store b addr v =
  emit b (Sim_instr.St { addr = Sim_instr.addr addr; data = Sim_instr.Imm v });
  Hashtbl.replace b.stores addr v

let compute b n = if n > 0 then emit b (Sim_instr.Nop n)

let finish b name ~region =
  {
    name;
    instrs = Array.of_list (List.rev b.acc);
    expected = Hashtbl.fold (fun a v acc -> (a, v) :: acc) b.stores [];
    region;
  }

(* GAP constructs the CSR from an edge list before running the kernel
   (BuildGraph): stores to every offsets/edges/weights page.  Under
   fault injection these writes are the main source of imprecise store
   exceptions (§6.5). *)
let emit_build b (g : Graph.t) l =
  for v = 0 to g.Graph.n do
    store b (l.offsets_at + (8 * v)) g.Graph.offsets.(v);
    if v land 7 = 0 then compute b 1
  done;
  for e = 0 to Graph.nedges g - 1 do
    store b (l.edges_at + (8 * e)) g.Graph.edges.(e);
    store b (l.weights_at + (8 * e)) g.Graph.weights.(e);
    if e land 7 = 0 then compute b 1
  done

let bfs ?(include_build = true) (g : Graph.t) ~base ~src =
  let l = mk_layout g ~base ~data_arrays:1 in
  let dist_addr v = l.data_at + (8 * v) in
  let b = builder () in
  if include_build then emit_build b g l;
  let dist = Array.make g.Graph.n max_int in
  dist.(src) <- 0;
  store b (dist_addr src) 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    (* read the row bounds, then chase each edge *)
    let r_off = load b (l.offsets_at + (8 * u)) in
    let _ = load b (l.offsets_at + (8 * (u + 1))) in
    for e = g.Graph.offsets.(u) to g.Graph.offsets.(u + 1) - 1 do
      let v = g.Graph.edges.(e) in
      let r_edge = load ~dep:r_off b (l.edges_at + (8 * e)) in
      let _ = load ~dep:r_edge b (dist_addr v) in
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        store b (dist_addr v) dist.(v);
        Queue.add v q
      end;
      compute b 6
    done
  done;
  finish b "BFS" ~region:(base, l.total_bytes)

let sssp ?(include_build = true) ?(max_rounds = 6) (g : Graph.t) ~base ~src =
  let l = mk_layout g ~base ~data_arrays:1 in
  let dist_addr v = l.data_at + (8 * v) in
  let b = builder () in
  if include_build then emit_build b g l;
  let dist = Array.make g.Graph.n max_int in
  dist.(src) <- 0;
  store b (dist_addr src) 0;
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < max_rounds do
    changed := false;
    incr round;
    for u = 0 to g.Graph.n - 1 do
      let r_du = load b (dist_addr u) in
      if dist.(u) < max_int then begin
        let r_off = load ~dep:r_du b (l.offsets_at + (8 * u)) in
        for e = g.Graph.offsets.(u) to g.Graph.offsets.(u + 1) - 1 do
          let v = g.Graph.edges.(e) and w = g.Graph.weights.(e) in
          let r_edge = load ~dep:r_off b (l.edges_at + (8 * e)) in
          let _ = load b (l.weights_at + (8 * e)) in
          let _ = load ~dep:r_edge b (dist_addr v) in
          if dist.(u) + w < dist.(v) then begin
            dist.(v) <- dist.(u) + w;
            store b (dist_addr v) dist.(v);
            changed := true
          end;
          compute b 6
        done
      end
      else compute b 1
    done
  done;
  finish b "SSSP" ~region:(base, l.total_bytes)

let bc ?(include_build = true) (g : Graph.t) ~base ~sources =
  let l = mk_layout g ~base ~data_arrays:2 in
  let sigma_addr v = l.data_at + (8 * v) in
  let delta_addr v = l.data_at + (8 * g.Graph.n) + (8 * v) in
  let b = builder () in
  if include_build then emit_build b g l;
  List.iter
    (fun src ->
      let sigma = Array.make g.Graph.n 0.0 in
      let dist = Array.make g.Graph.n (-1) in
      let order = ref [] in
      sigma.(src) <- 1.0;
      dist.(src) <- 0;
      store b (sigma_addr src) 1000;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order := u :: !order;
        let r_off = load b (l.offsets_at + (8 * u)) in
        for e = g.Graph.offsets.(u) to g.Graph.offsets.(u + 1) - 1 do
          let v = g.Graph.edges.(e) in
          let r_edge = load ~dep:r_off b (l.edges_at + (8 * e)) in
          let _ = load ~dep:r_edge b (sigma_addr v) in
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end;
          if dist.(v) = dist.(u) + 1 then begin
            sigma.(v) <- sigma.(v) +. sigma.(u);
            store b (sigma_addr v) (int_of_float (1000. *. sigma.(v)))
          end;
          compute b 4
        done
      done;
      (* backward dependency accumulation: store-heavy *)
      let delta = Array.make g.Graph.n 0.0 in
      List.iter
        (fun u ->
          let r_du = load b (delta_addr u) in
          for e = g.Graph.offsets.(u) to g.Graph.offsets.(u + 1) - 1 do
            let v = g.Graph.edges.(e) in
            let _ = load ~dep:r_du b (delta_addr v) in
            if dist.(v) = dist.(u) + 1 && sigma.(v) > 0. then begin
              delta.(u) <-
                delta.(u) +. (sigma.(u) /. sigma.(v) *. (1.0 +. delta.(v)));
              store b (delta_addr u) (int_of_float (1000. *. delta.(u)))
            end
          done)
        !order)
    sources;
  finish b "BC" ~region:(base, l.total_bytes)

let stream_of t = Sim_instr.of_list (Array.to_list t.instrs)

let mark_faulting machine t =
  let base, bytes = t.region in
  let einj = Machine.einject machine in
  let p = ref base in
  while !p < base + bytes do
    Einject.set_faulting einj !p;
    p := !p + page
  done

let verify machine t =
  List.for_all (fun (a, v) -> Machine.read_word machine a = v) t.expected
