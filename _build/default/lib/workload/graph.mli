(** Synthetic graphs in CSR form, the substrate for the GAP kernels
    (§6.5: BFS, SSSP, BC on graphs of ~n nodes and ~8n edges). *)

type t = {
  n : int;
  offsets : int array;  (** length n+1 *)
  edges : int array;  (** concatenated adjacency lists *)
  weights : int array;  (** per-edge positive weights *)
}

val nodes : t -> int
val nedges : t -> int
val degree : t -> int -> int
val neighbors : t -> int -> (int * int) list
(** (target, weight) pairs. *)

val uniform : Ise_util.Rng.t -> nodes:int -> avg_degree:int -> t
(** Erdős–Rényi-style random graph with deterministic weights. *)

val power_law : Ise_util.Rng.t -> nodes:int -> avg_degree:int -> t
(** Skewed degree distribution (preferential attachment flavour),
    closer to the Kronecker graphs GAP uses. *)

val footprint_bytes : t -> int
(** Bytes of the CSR arrays when laid out in simulated memory. *)

(** {1 Reference algorithms} (pure OCaml, used to validate traces) *)

val bfs_distances : t -> src:int -> int array
(** Unweighted hop distances; unreachable = max_int. *)

val sssp_distances : t -> src:int -> int array
(** Bellman-Ford shortest path distances. *)

val bc_scores : t -> sources:int list -> float array
(** Brandes betweenness-centrality contributions from the given
    source set. *)
