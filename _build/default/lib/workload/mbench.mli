(** The Figure 5 microbenchmark: overhead breakdown of imprecise
    store-exception handling, with and without batching.

    The benchmark applies a configurable number of stores to a large
    array in the EInject region, with a fraction of the pages marked
    faulting.  In the unbatched variant each store is followed by a
    fence, so every imprecise exception covers exactly one faulting
    store; in the batched variant stores stream back-to-back and each
    exception covers whatever the store buffer has accumulated. *)

type result = {
  batching : bool;
  faulting_stores : int;
  invocations : int;
  avg_batch : float;
  uarch_per_store : float;  (** FSB drain + pipeline flush cycles *)
  apply_per_store : float;  (** resolve + S_OS cycles *)
  other_per_store : float;  (** dispatch, misc OS, IO wait cycles *)
  total_per_store : float;
  total_cycles : int;
}

val run :
  ?cfg:Ise_sim.Config.t -> ?seed:int -> ?stores:int -> ?array_bytes:int ->
  ?fault_page_pct:int -> batching:bool -> unit -> result
(** Defaults: 2000 stores over a 16 MiB array with 60% of pages
    faulting (scaled down from the paper's 10 K stores over 512 MiB —
    the per-store overhead is size-independent). *)

val speedup : result -> result -> float
(** [speedup unbatched batched]: per-store overhead ratio. *)
