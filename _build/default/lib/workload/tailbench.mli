(** Tailbench-style request loops (§6.5: Silo and Masstree in
    integrated mode, throughput as the metric).

    - {b Silo}: an OLTP key-value store — each transaction reads a
      handful of random records, updates one or two, and commits with
      a fence.
    - {b Masstree}: a tree-structured index — each request
      pointer-chases a trie of configurable depth (dependent loads)
      and occasionally updates the leaf. *)

type trace = {
  name : string;
  instrs : Ise_sim.Sim_instr.t array;
  requests : int;
  region : int * int;  (** (base, bytes) of the data structures *)
}

val silo :
  ?seed:int -> ?slots:int -> ?reads_per_txn:int -> ?writes_per_txn:int ->
  requests:int -> base:int -> unit -> trace

val masstree :
  ?seed:int -> ?fanout_log2:int -> ?depth:int -> ?update_pct:int ->
  requests:int -> base:int -> unit -> trace

val stream_of : trace -> Ise_sim.Sim_instr.stream
val mark_faulting : Ise_sim.Machine.t -> trace -> unit

val throughput : trace -> cycles:int -> float
(** Requests per kilocycle. *)
