(** GAP kernels (BFS, SSSP, BC) as memory traces (§6.5).

    Each kernel runs the real algorithm over a CSR graph laid out in
    simulated memory and emits the corresponding instruction trace:
    offset/edge/value loads with the natural pointer-chasing
    dependencies, and stores of the actually computed values.  Running
    the trace on the machine therefore materialises the kernel's
    results in simulated memory, which the tests check against the
    pure reference implementation — with and without injected
    imprecise exceptions. *)

type trace = {
  name : string;
  instrs : Ise_sim.Sim_instr.t array;
  expected : (int * int) list;
      (** (address, value) pairs the trace must leave in memory *)
  region : int * int;  (** (base address, bytes) of the data footprint *)
}

val layout_bytes : Graph.t -> int

val bfs : ?include_build:bool -> Graph.t -> base:int -> src:int -> trace
(** [include_build] (default true) prepends the CSR-construction
    stores (GAP's BuildGraph phase) — under fault injection these are
    the main source of imprecise store exceptions. *)

val sssp :
  ?include_build:bool -> ?max_rounds:int -> Graph.t -> base:int -> src:int ->
  trace

val bc : ?include_build:bool -> Graph.t -> base:int -> sources:int list -> trace

val stream_of : trace -> Ise_sim.Sim_instr.stream

val mark_faulting : Ise_sim.Machine.t -> trace -> unit
(** Marks every page of the trace's data region faulting (the paper's
    §6.5 methodology: all workload memory is allocated from the
    EInject region and marked before the run). *)

val verify : Ise_sim.Machine.t -> trace -> bool
(** All expected (address, value) pairs present in final memory. *)
