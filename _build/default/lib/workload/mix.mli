(** Instruction-mix synthesis for the Table 3 study.

    Each profile reproduces a benchmark's instruction mix (store /
    load / sync / other percentages, Table 3) together with locality
    knobs that control how often memory operations miss the cache
    hierarchy — the determinants of the WC-over-SC speedup and of the
    ASO speculation-state requirement. *)

type profile = {
  name : string;
  suite : string;  (** GAP / Tailbench / Cloudsuite *)
  store_pct : int;
  load_pct : int;
  sync_pct : int;  (** fences; the rest of 100% is compute *)
  store_cold_pct : int;  (** % of stores that touch the cold region *)
  store_shared_pct : int;
      (** % of stores to a region shared by all threads — cross-core
          invalidations make these the classic store-wait stores *)
  load_cold_pct : int;  (** % of loads that touch the cold region *)
  hot_bytes : int;  (** cache-resident working set *)
  cold_bytes : int;  (** streaming working set (≫ LLC) *)
}

val table3 : profile list
(** The eight evaluated workloads: BFS, SSSP, BC (GAP); Silo, Masstree
    (Tailbench); Data Caching, Media Streaming, Data Serving
    (Cloudsuite), with the paper's instruction mixes. *)

val find : string -> profile

val stream :
  ?shared_base:int -> seed:int -> length:int -> base:int -> profile ->
  Ise_sim.Sim_instr.stream
(** A fresh instruction stream of [length] instructions following the
    profile, with private addresses laid out from [base] and shared
    stores hitting [shared_base] (default [0xA000_0000]). *)

val multicore_streams :
  ?shared_base:int -> seed:int -> length_per_core:int -> cores:int ->
  profile -> Ise_sim.Sim_instr.stream array
(** One stream per core over disjoint private regions and a common
    shared region — the Table 3 run configuration. *)

val footprint_bytes : profile -> int
