open Ise_sim

type run = {
  cycles : int;
  retired : int;
  imprecise_exceptions : int;
  faulting_stores : int;
  precise_faults : int;
  handler_invocations : int;
}

let run_once ?(cfg = Config.default) ?mark ?verify ~programs () =
  let machine = Machine.create ~cfg ~programs () in
  Machine.set_trace_enabled machine false;
  let os = Ise_os.Handler.install machine in
  (match mark with Some f -> f machine | None -> ());
  Machine.run ~max_cycles:500_000_000 machine;
  (match verify with
   | Some check ->
     if not (check machine) then failwith "Runner.run_once: result verification failed"
   | None -> ());
  let imprecise = ref 0 and faulting = ref 0 in
  for i = 0 to Machine.ncores machine - 1 do
    let s = Core.stats (Machine.core machine i) in
    imprecise := !imprecise + s.Core.imprecise_exceptions;
    faulting := !faulting + s.Core.faulting_stores
  done;
  {
    cycles = Machine.cycles machine;
    retired = Machine.total_retired machine;
    imprecise_exceptions = !imprecise;
    faulting_stores = !faulting;
    precise_faults = os.Ise_os.Handler.precise_faults;
    handler_invocations = os.Ise_os.Handler.invocations;
  }

type comparison = {
  baseline : run;
  imprecise : run;
  relative_perf : float;
}

let compare_with_faults ?cfg ~mk_programs ~mark ?verify () =
  let baseline = run_once ?cfg ?verify ~programs:(mk_programs ()) () in
  let imprecise = run_once ?cfg ~mark ?verify ~programs:(mk_programs ()) () in
  {
    baseline;
    imprecise;
    relative_perf =
      float_of_int baseline.cycles /. float_of_int (max 1 imprecise.cycles);
  }
