(** End-to-end workload runs with and without injected imprecise
    exceptions (Figure 6's methodology). *)

type run = {
  cycles : int;
  retired : int;
  imprecise_exceptions : int;
  faulting_stores : int;
  precise_faults : int;
  handler_invocations : int;
}

val run_once :
  ?cfg:Ise_sim.Config.t -> ?mark:(Ise_sim.Machine.t -> unit) ->
  ?verify:(Ise_sim.Machine.t -> bool) ->
  programs:Ise_sim.Sim_instr.stream array -> unit -> run
(** Runs the programs under the reference OS handler; [mark] injects
    faults before the run starts; [verify] (checked after the run)
    raises on failure. *)

type comparison = {
  baseline : run;  (** no injected exceptions *)
  imprecise : run;  (** all data pages marked faulting at start *)
  relative_perf : float;  (** baseline cycles / imprecise cycles *)
}

val compare_with_faults :
  ?cfg:Ise_sim.Config.t ->
  mk_programs:(unit -> Ise_sim.Sim_instr.stream array) ->
  mark:(Ise_sim.Machine.t -> unit) ->
  ?verify:(Ise_sim.Machine.t -> bool) -> unit -> comparison
