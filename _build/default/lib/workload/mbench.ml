open Ise_util
open Ise_sim

type result = {
  batching : bool;
  faulting_stores : int;
  invocations : int;
  avg_batch : float;
  uarch_per_store : float;
  apply_per_store : float;
  other_per_store : float;
  total_per_store : float;
  total_cycles : int;
}

let page = 4096

let build_trace rng ~stores ~array_bytes ~base ~batching =
  let words = array_bytes / 8 in
  let acc = ref [] in
  for _ = 1 to stores do
    acc :=
      Sim_instr.St
        { addr = Sim_instr.addr (base + (8 * Rng.int rng words));
          data = Sim_instr.Imm (Rng.int rng 1_000_000) }
      :: !acc;
    if not batching then acc := Sim_instr.Fence :: !acc
    else acc := Sim_instr.Nop 1 :: !acc
  done;
  List.rev !acc

let run ?(cfg = Config.default) ?(seed = 7) ?(stores = 2000)
    ?(array_bytes = 16 * 1024 * 1024) ?(fault_page_pct = 60) ~batching () =
  let rng = Rng.create seed in
  let base = cfg.Config.einject_base in
  let trace = build_trace rng ~stores ~array_bytes ~base ~batching in
  let machine =
    Machine.create ~cfg ~programs:[| Sim_instr.of_list trace |] ()
  in
  Machine.set_trace_enabled machine false;
  let os = Ise_os.Handler.install machine in
  (* mark a random subset of the array's pages faulting *)
  let npages = array_bytes / page in
  for p = 0 to npages - 1 do
    if Rng.int rng 100 < fault_page_pct then
      Einject.set_faulting (Machine.einject machine) (base + (p * page))
  done;
  Machine.run ~max_cycles:200_000_000 machine;
  let core_stats = Core.stats (Machine.core machine 0) in
  let handled = max 1 os.Ise_os.Handler.faulting_handled in
  let f n = float_of_int n /. float_of_int handled in
  let uarch = f core_stats.Core.drain_uarch_cycles in
  let apply = f os.Ise_os.Handler.apply_cycles in
  let other = f os.Ise_os.Handler.other_cycles in
  {
    batching;
    faulting_stores = os.Ise_os.Handler.faulting_handled;
    invocations = os.Ise_os.Handler.invocations;
    avg_batch = Stats.mean os.Ise_os.Handler.batch_sizes;
    uarch_per_store = uarch;
    apply_per_store = apply;
    other_per_store = other;
    total_per_store = uarch +. apply +. other;
    total_cycles = Machine.cycles machine;
  }

let speedup unbatched batched =
  unbatched.total_per_store /. batched.total_per_store
