open Ise_util
open Ise_sim

type trace = {
  name : string;
  instrs : Sim_instr.t array;
  requests : int;
  region : int * int;
}

let page = 4096

type builder = {
  mutable acc : Sim_instr.t list;
  mutable next_reg : int;
}

let builder () = { acc = []; next_reg = 0 }

let fresh_reg b =
  b.next_reg <- (b.next_reg + 1) mod 48;
  b.next_reg

let emit b i = b.acc <- i :: b.acc

let silo ?(seed = 1) ?(slots = 1 lsl 16) ?(reads_per_txn = 6)
    ?(writes_per_txn = 2) ~requests ~base () =
  let rng = Rng.create seed in
  let b = builder () in
  let slot_addr s = base + (8 * s) in
  for _txn = 1 to requests do
    (* read phase *)
    for _ = 1 to reads_per_txn do
      let r = fresh_reg b in
      emit b
        (Sim_instr.Ld { dst = r; addr = Sim_instr.addr (slot_addr (Rng.int rng slots)) });
      emit b (Sim_instr.Nop 1)
    done;
    (* write phase *)
    for _ = 1 to writes_per_txn do
      emit b
        (Sim_instr.St
           { addr = Sim_instr.addr (slot_addr (Rng.int rng slots));
             data = Sim_instr.Imm (Rng.int rng 1_000_000) })
    done;
    (* commit *)
    emit b Sim_instr.Fence;
    emit b (Sim_instr.Nop 4)
  done;
  { name = "Silo"; instrs = Array.of_list (List.rev b.acc); requests;
    region = (base, ((slots * 8 / page) + 1) * page) }

let masstree ?(seed = 2) ?(fanout_log2 = 4) ?(depth = 5) ?(update_pct = 10)
    ~requests ~base () =
  let rng = Rng.create seed in
  let b = builder () in
  (* an implicit tree laid out level by level: level l spans
     fanout^l nodes *)
  let fanout = 1 lsl fanout_log2 in
  let level_base = Array.make (depth + 1) 0 in
  for l = 1 to depth do
    level_base.(l) <-
      level_base.(l - 1) + int_of_float (float_of_int fanout ** float_of_int (l - 1))
  done;
  let total_nodes =
    level_base.(depth)
    + int_of_float (float_of_int fanout ** float_of_int (depth - 1))
  in
  for _req = 1 to requests do
    (* pointer-chase from root to leaf: each level's address depends
       on the previous load *)
    let idx = ref 0 in
    let prev = ref None in
    for l = 0 to depth - 1 do
      let node = level_base.(l) + !idx in
      let r = fresh_reg b in
      emit b
        (Sim_instr.Ld
           { dst = r; addr = Sim_instr.addr ?dep:!prev (base + (8 * node)) });
      prev := Some r;
      idx := (!idx * fanout) + Rng.int rng fanout;
      emit b (Sim_instr.Nop 1)
    done;
    if Rng.int rng 100 < update_pct then begin
      let leaf = level_base.(depth - 1) + (!idx / fanout) in
      emit b
        (Sim_instr.St
           { addr = Sim_instr.addr (base + (8 * leaf));
             data = Sim_instr.Imm (Rng.int rng 1_000_000) })
    end;
    emit b (Sim_instr.Nop 2)
  done;
  { name = "Masstree"; instrs = Array.of_list (List.rev b.acc); requests;
    region = (base, ((total_nodes * 8 / page) + 1) * page) }

let stream_of t = Sim_instr.of_list (Array.to_list t.instrs)

let mark_faulting machine t =
  let base, bytes = t.region in
  let einj = Machine.einject machine in
  let p = ref base in
  while !p < base + bytes do
    Einject.set_faulting einj !p;
    p := !p + page
  done

let throughput t ~cycles = float_of_int t.requests /. (float_of_int cycles /. 1000.)
