(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from an [t]
    obtained by splitting a single per-run root generator, so a run is
    fully reproducible from its seed.  The implementation is
    SplitMix64, which is small, fast, and has well-understood
    statistical quality for simulation purposes. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] draws the number of failures before the first
    success of a Bernoulli trial with success probability [p].
    Requires [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution. *)
