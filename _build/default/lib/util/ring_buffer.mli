(** Bounded FIFO ring buffer with explicit head/tail positions.

    This is the data structure backing both the hardware store buffer
    and the Faulting Store Buffer of the paper (§5.2): a
    uni-directional, order-preserving channel where the producer owns
    the tail pointer and the consumer owns the head pointer.  Positions
    are monotonically increasing integers; the physical slot is the
    position masked by the capacity, mirroring the base/mask system
    registers of the FSBC. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty ring. [capacity] must be a power
    of two (so a mask register can address it), and positive. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val head : 'a t -> int
(** Monotonic position of the oldest element. *)

val tail : 'a t -> int
(** Monotonic position one past the newest element. *)

val push : 'a t -> 'a -> unit
(** Appends at the tail. @raise Failure if full. *)

val pop : 'a t -> 'a
(** Removes and returns the oldest element. @raise Failure if empty. *)

val peek : 'a t -> 'a option
(** Oldest element without removing it. *)

val peek_at : 'a t -> int -> 'a option
(** [peek_at t pos] reads the element at monotonic position [pos] if it
    is still buffered. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-to-newest iteration. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val find : ('a -> bool) -> 'a t -> 'a option

val find_last : ('a -> bool) -> 'a t -> 'a option
(** Newest matching element — the store-buffer forwarding lookup. *)

val clear : 'a t -> unit

val update_last : ('a -> 'a option) -> 'a t -> bool
(** [update_last f t] applies [f] to the newest element; if [f] returns
    [Some v] the element is replaced by [v] and the result is [true].
    Used for store coalescing. *)
