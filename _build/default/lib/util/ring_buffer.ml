type 'a t = {
  slots : 'a option array;
  mask : int;
  mutable head : int;
  mutable tail : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~capacity =
  if not (is_power_of_two capacity) then
    invalid_arg "Ring_buffer.create: capacity must be a positive power of two";
  { slots = Array.make capacity None; mask = capacity - 1; head = 0; tail = 0 }

let capacity t = Array.length t.slots
let length t = t.tail - t.head
let is_empty t = t.head = t.tail
let is_full t = length t = capacity t
let head t = t.head
let tail t = t.tail

let push t v =
  if is_full t then failwith "Ring_buffer.push: full";
  t.slots.(t.tail land t.mask) <- Some v;
  t.tail <- t.tail + 1

let pop t =
  if is_empty t then failwith "Ring_buffer.pop: empty";
  let idx = t.head land t.mask in
  match t.slots.(idx) with
  | None -> assert false
  | Some v ->
    t.slots.(idx) <- None;
    t.head <- t.head + 1;
    v

let peek t = if is_empty t then None else t.slots.(t.head land t.mask)

let peek_at t pos =
  if pos < t.head || pos >= t.tail then None else t.slots.(pos land t.mask)

let iter f t =
  for pos = t.head to t.tail - 1 do
    match t.slots.(pos land t.mask) with
    | None -> assert false
    | Some v -> f v
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let find p t =
  let rec loop pos =
    if pos >= t.tail then None
    else
      match t.slots.(pos land t.mask) with
      | Some v when p v -> Some v
      | _ -> loop (pos + 1)
  in
  loop t.head

let find_last p t =
  let rec loop pos =
    if pos < t.head then None
    else
      match t.slots.(pos land t.mask) with
      | Some v when p v -> Some v
      | _ -> loop (pos - 1)
  in
  loop (t.tail - 1)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.tail <- 0

let update_last f t =
  if is_empty t then false
  else
    let idx = (t.tail - 1) land t.mask in
    match t.slots.(idx) with
    | None -> assert false
    | Some v ->
      (match f v with
       | None -> false
       | Some v' ->
         t.slots.(idx) <- Some v';
         true)
