type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list }

let create ~headers = { headers; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let pad s w =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < ncols then Buffer.add_string buf (pad c widths.(i))
        else Buffer.add_string buf c)
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "--";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Separator -> rule ()) rows;
  Buffer.contents buf

let print ?title t =
  (match title with
   | Some s ->
     print_newline ();
     print_endline s;
     print_endline (String.make (String.length s) '=')
   | None -> ());
  print_string (render t);
  flush stdout

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
