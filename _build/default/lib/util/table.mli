(** ASCII table rendering for benchmark output.

    The bench harness prints the paper's tables and figure series as
    aligned text tables so the rows can be compared against the paper
    directly. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val add_separator : t -> unit

val render : t -> string
(** Renders with a header rule and column alignment. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the table (with an optional underlined
    title) to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with a fixed number of decimals (default 2). *)

val cell_i : int -> string
