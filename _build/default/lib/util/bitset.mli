(** Dense mutable bitset over [0 .. n-1].

    Backs the EInject page-fault bitmap (one bit per 4 KiB page of the
    device-reserved region) and directory sharer vectors. *)

type t

val create : int -> t
(** [create n] is an all-zero set over the domain [0..n-1]. *)

val length : t -> int
(** Domain size. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val clear_all : t -> unit
val to_list : t -> int list
val copy : t -> t
val equal : t -> t -> bool
