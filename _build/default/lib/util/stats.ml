type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { samples = [||]; size = 0; sorted = true }

let add t x =
  if t.size >= Array.length t.samples then begin
    let ncap = max 64 (2 * Array.length t.samples) in
    let ns = Array.make ncap 0. in
    Array.blit t.samples 0 ns 0 t.size;
    t.samples <- ns
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let add_int t x = add t (float_of_int x)
let count t = t.size

let total t =
  let s = ref 0. in
  for i = 0 to t.size - 1 do
    s := !s +. t.samples.(i)
  done;
  !s

let mean t = if t.size = 0 then nan else total t /. float_of_int t.size

let variance t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let s = ref 0. in
    for i = 0 to t.size - 1 do
      let d = t.samples.(i) -. m in
      s := !s +. (d *. d)
    done;
    !s /. float_of_int (t.size - 1)
  end

let stddev t = sqrt (variance t)

let fold_range f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min_value t = if t.size = 0 then nan else fold_range min infinity t
let max_value t = if t.size = 0 then nan else fold_range max neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.samples 0 t.size in
    Array.sort compare sub;
    Array.blit sub 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.size)) in
    let idx = max 0 (min (t.size - 1) (rank - 1)) in
    t.samples.(idx)
  end

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f"
    (count t) (mean t) (stddev t) (min_value t) (percentile t 50.)
    (percentile t 99.) (max_value t)
