type t = { words : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xFF))

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let popcount_byte b =
  let rec loop b acc = if b = 0 then acc else loop (b lsr 1) (acc + (b land 1)) in
  loop b 0

let cardinal t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte (Char.code c)) t.words;
  !total

let is_empty t = cardinal t = 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let clear_all t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])
let copy t = { words = Bytes.copy t.words; n = t.n }
let equal a b = a.n = b.n && Bytes.equal a.words b.words
