(** Minimum priority queue keyed by integer priority (binary heap).

    Drives the discrete-event simulation engine: events are ordered by
    firing time, with a monotonically increasing sequence number
    breaking ties so same-cycle events fire in insertion order
    (deterministic simulation). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (int * 'a) option
(** Removes the minimum-priority element; FIFO among equals. *)

val peek : 'a t -> (int * 'a) option
val clear : 'a t -> unit
