lib/util/bitset.mli:
