lib/util/table.mli:
