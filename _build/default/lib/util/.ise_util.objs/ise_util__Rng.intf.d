lib/util/rng.mli:
