lib/util/pqueue.mli:
