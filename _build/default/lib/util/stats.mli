(** Streaming statistics accumulator.

    Collects samples and reports count, mean, variance, min, max, and
    percentiles.  Percentiles require retaining the samples; the
    accumulator keeps them all, which is fine at simulation scale. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val variance : t -> float
val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
    samples. Returns [nan] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)

val pp : Format.formatter -> t -> unit
